//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`benchmark_group` API
//! shape the workspace's benches use, but measures with a plain
//! wall-clock loop: a short warm-up, then `sample_size` timed samples of
//! an adaptively chosen iteration batch, reporting the median per-iteration
//! time. Good enough for before/after comparisons on one machine, which is
//! what the benches exist for; not a statistics engine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, ignored).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A parameterized benchmark name, e.g. `group/64`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter (the group name provides the rest).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printed name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Measurement driver handed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration nanoseconds, filled by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Time `routine` and record the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch calibration: aim for samples of >= ~1 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= (1 << 20) {
                break;
            }
            batch *= 4;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }

    /// Like `iter`, with a fresh input built by `setup` for every call.
    /// Setup time is excluded by timing the routine calls individually.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            per_iter.push(start.elapsed().as_secs_f64() * 1e9);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter[per_iter.len() / 2];
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut bencher);
        report(&self.name, &id.into_id(), bencher.result_ns);
        self
    }

    /// Run one benchmark with an auxiliary input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut bencher, input);
        report(&self.name, &id.into_id(), bencher.result_ns);
        self
    }

    /// End the group (printing already happened per-benchmark).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    // Routed through the tracing facade so a JSONL sink captures bench
    // results too; prints to stdout as before when no sink is installed.
    hetmmm_obs::message_or_stdout(
        "criterion.report",
        format!("{group}/{id:<24} time: {value:>10.3} {unit}/iter"),
    );
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accept (and ignore) CLI arguments, like the real harness.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 20,
            result_ns: 0.0,
        };
        f(&mut bencher);
        report("bench", &id.into_id(), bencher.result_ns);
        self
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declare a benchmark group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
