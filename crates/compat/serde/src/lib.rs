//! Offline stand-in for `serde`.
//!
//! The real serde cannot be fetched in this build environment, so the
//! workspace ships this minimal replacement under the same crate name. It
//! keeps the two-trait shape (`Serialize` / `Deserialize`, both derivable)
//! but routes through an explicit [`Value`] tree instead of serde's
//! visitor architecture: `Serialize` renders a value tree, `Deserialize`
//! reads one back. The companion `serde_json` shim renders and parses that
//! tree as real JSON, which is all the workspace uses serialization for
//! (round-tripping partitions, DFA outcomes and census reports).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any integer (i128 covers the full u64 and i64 ranges).
    Int(i128),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (field order preserved).
    Map(Vec<(String, Value)>),
}

/// Deserialization error: what was expected and what was found.
#[derive(Clone, Debug)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from any message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`] tree. Derivable.
pub trait Serialize {
    /// Render as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree. Derivable.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Value {
    /// Borrow the value under `key` when this is a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` when this is a [`Value::Int`] in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Borrow the elements when this is a [`Value::Seq`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Look up a field in a [`Value::Map`] (helper for derived impls).
pub fn map_get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, DeError> {
    match v {
        Value::Map(pairs) => pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::new(format!("missing field `{key}`"))),
        other => Err(DeError::new(format!(
            "expected map with field `{key}`, found {other:?}"
        ))),
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!(
                            "integer {i} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected integer, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::new(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!(
                "expected 1-char string, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected {N} elements, found {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$(stringify!($idx)),+].len();
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        let mut it = items.iter();
                        Ok(($($t::from_value(it.next().unwrap())?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected {LEN}-tuple, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
