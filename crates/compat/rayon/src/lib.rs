//! Offline stand-in for `rayon`.
//!
//! Implements the one shape the workspace uses — `slice.par_iter().map(f)
//! .collect::<Vec<_>>()` — with real parallelism: the items are split into
//! contiguous chunks, one per available core, each chunk is mapped on a
//! scoped OS thread, and the per-chunk outputs are concatenated in order,
//! so results are position-stable exactly like rayon's.

#![forbid(unsafe_code)]

pub mod prelude {
    //! Import surface mirroring `rayon::prelude::*`.
    pub use super::{IntoParallelRefIterator, ParIter, ParMap};
}

/// `par_iter` entry point for slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Item reference type.
    type Item: Sync + 'a;

    /// A position-stable parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `&T`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map every item through `f` (applied on worker threads).
    pub fn map<O, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> O + Sync,
        O: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Run the map across threads and collect the outputs in input order.
    pub fn collect<O, C>(self) -> C
    where
        F: Fn(&'a T) -> O + Sync,
        O: Send,
        C: FromParallel<O>,
    {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(self.items.len().max(1));
        let chunk_len = self.items.len().div_ceil(threads);
        let f = &self.f;
        let mut results: Vec<O> = Vec::with_capacity(self.items.len());
        if chunk_len == 0 {
            return C::from_ordered(results);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<O>>()))
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("parallel map worker panicked"));
            }
        });
        C::from_ordered(results)
    }
}

/// Collection target of [`ParMap::collect`].
pub trait FromParallel<O> {
    /// Build from outputs already in input order.
    fn from_ordered(items: Vec<O>) -> Self;
}

impl<O> FromParallel<O> for Vec<O> {
    fn from_ordered(items: Vec<O>) -> Vec<O> {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u64> = Vec::new();
        let out: Vec<u64> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let input: Vec<u64> = (0..64).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let n = ids.lock().unwrap().len();
        assert!(n >= 1);
        if std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1
        {
            assert!(n > 1, "expected fan-out across threads");
        }
    }
}
