//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no access to crates.io, so the
//! external `rand` dependency is replaced by this path crate of the same
//! name. It implements exactly the API surface the hetmmm crates use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] core trait,
//! the [`RngExt::random_range`] convenience, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — high-quality, deterministic, and stable across platforms,
//! which is all the paper-reproduction experiments require (they never
//! promised bit-compatibility with upstream `rand` streams).

#![forbid(unsafe_code)]

/// Core random-number-generator trait: a source of uniform `u64`s.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range by [`RngExt::random_range`].
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny bias of
                // plain modulo is avoided by widening to 128 bits.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample from empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`Rng`], mirroring `rand 0.10`'s `Rng`
/// extension surface.
pub trait RngExt: Rng {
    /// A uniform sample from `range` (`a..b` or `a..=b`).
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_half_open(self, 0.0, 1.0) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator, seeded via SplitMix64 — the offline stand-in
    /// for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, SampleUniform};

    /// Shuffling and choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_half_open(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_half_open(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(1..=4usize);
            assert!((1..=4).contains(&w));
            let f = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let s = rng.random_range(-5i64..-2);
            assert!((-5..-2).contains(&s));
        }
    }

    #[test]
    fn range_samples_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should (overwhelmingly) move");
    }
}
