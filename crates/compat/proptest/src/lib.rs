//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! `name in strategy` parameter bindings, range and tuple strategies,
//! [`Strategy::prop_map`], and the `prop_assert!`/`prop_assert_eq!`
//! assertions. Each test runs `cases` deterministic seeded cases (no
//! shrinking); failures report the case's values through the normal assert
//! message, and re-runs are reproducible because case seeds are fixed.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub mod test_runner {
    //! Case execution machinery used by the generated tests.

    use super::*;

    /// Per-case RNG: deterministic for a given `(test, case)` pair.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// The RNG for one numbered case.
        pub fn for_case(case: u64) -> TestRng {
            TestRng {
                inner: StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ (case << 1)),
            }
        }

        /// Uniform `u64` in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.inner.random_range(0..bound.max(1))
        }

        /// Uniform `f64` in `[low, high)`.
        pub fn unit_range(&mut self, low: f64, high: f64) -> f64 {
            self.inner.random_range(low..high)
        }
    }

    /// Run configuration (`ProptestConfig` in real proptest).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of seeded cases to execute.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.unit_range(self.start, self.end)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod prelude {
    //! Import surface mirroring `proptest::prelude::*`.

    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property (panics with the case's message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Bind one `name in strategy` parameter list entry after another.
#[doc(hidden)]
#[macro_export]
macro_rules! __pt_bind {
    (@munch $rng:ident) => {};
    (@munch $rng:ident $name:ident in $($rest:tt)+) => {
        $crate::__pt_take!{@scan $rng $name [] $($rest)+}
    };
}

/// Accumulate strategy tokens for one parameter up to a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! __pt_take {
    (@scan $rng:ident $name:ident [$($s:tt)*] , $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($($s)*), &mut $rng);
        $crate::__pt_bind!{@munch $rng $($rest)*}
    };
    (@scan $rng:ident $name:ident [$($s:tt)*]) => {
        let $name = $crate::strategy::Strategy::generate(&($($s)*), &mut $rng);
    };
    (@scan $rng:ident $name:ident [$($s:tt)*] $t:tt $($rest:tt)*) => {
        $crate::__pt_take!{@scan $rng $name [$($s)* $t] $($rest)*}
    };
}

/// Expand the `proptest!` item list.
#[doc(hidden)]
#[macro_export]
macro_rules! __pt_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            for __case in 0..u64::from(__cfg.cases) {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $crate::__pt_bind!(@munch __rng $($params)*);
                $body
            }
        }
        $crate::__pt_items!{ ($cfg) $($rest)* }
    };
}

/// The `proptest!` macro: seeded-case property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__pt_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__pt_items!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..=6, 1u32..=6).prop_map(|(a, b)| (a.max(b), a.min(b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect bounds and multiple params bind independently.
        #[test]
        fn ranges_in_bounds(x in 0u64..100, n in 8usize..32, p in arb_pair()) {
            prop_assert!(x < 100);
            prop_assert!((8..32).contains(&n));
            prop_assert!(p.0 >= p.1);
        }
    }

    proptest! {
        /// Default config path works too.
        #[test]
        fn default_config_runs(v in 1i64..=3) {
            prop_assert!((1..=3).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut TestRng::for_case(c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut TestRng::for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
