//! Offline stand-in for `serde_json`, backed by the in-repo serde shim's
//! [`serde::Value`] tree. Emits standards-compliant JSON and parses it back;
//! floats use Rust's shortest round-trip formatting.

#![forbid(unsafe_code)]

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Serialization/deserialization error.
pub type Error = DeError;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parse a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(DeError::new("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn render(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(DeError::new("cannot serialize non-finite float as JSON"));
            }
            // `{:?}` is Rust's shortest round-trip float form; it always
            // contains '.' or 'e', so integers and floats stay distinct.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out)?;
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(DeError::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    pairs.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(pairs));
                        }
                        _ => return Err(DeError::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(DeError::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(DeError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(DeError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| DeError::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::new("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(DeError::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte position.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| DeError::new("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| DeError::new(format!("invalid float `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| DeError::new(format!("invalid integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<u64> = vec![1, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let pairs: Vec<(u32, f64)> = vec![(1, 0.5), (2, -3.25)];
        let back: Vec<(u32, f64)> = from_str(&to_string(&pairs).unwrap()).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn strings_escape_correctly() {
        let s = String::from("a \"quoted\"\nline\\end");
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn options_and_bools() {
        let v: Vec<Option<bool>> = vec![Some(true), None, Some(false)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[true,null,false]");
        let back: Vec<Option<bool>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("7 junk").is_err());
    }
}
