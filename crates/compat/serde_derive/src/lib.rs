//! `#[derive(Serialize, Deserialize)]` for the in-repo serde stand-in.
//!
//! Implements exactly the derive coverage the hetmmm workspace needs:
//! structs with named fields, unit structs, and enums whose variants are
//! unit or struct-like (named fields), optionally with explicit
//! discriminants. Tuple structs, tuple variants and generic types are
//! rejected with a compile error — the workspace has none.
//!
//! No `syn`/`quote` (unavailable offline): the input item is parsed
//! directly from the token stream and the impl is emitted as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<(String, Vec<String>)>,
    },
}

/// Skip attributes (`#[...]`, covering doc comments) and visibility.
fn skip_meta(tokens: &[TokenTree], mut pos: usize) -> usize {
    loop {
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                pos += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        pos += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return pos,
        }
    }
}

fn ident_at(tokens: &[TokenTree], pos: usize) -> Option<String> {
    match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Parse `name: Type, ...` named fields, tracking `<...>` nesting so commas
/// inside generic arguments are not treated as separators.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_meta(&tokens, pos);
        let Some(name) = ident_at(&tokens, pos) else {
            break;
        };
        fields.push(name);
        pos += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut angle = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
    }
    fields
}

/// Parse enum variants: `Name`, `Name { fields }`, `Name = expr`.
fn parse_variants(group: TokenStream) -> Result<Vec<(String, Vec<String>)>, String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_meta(&tokens, pos);
        let Some(name) = ident_at(&tokens, pos) else {
            break;
        };
        pos += 1;
        let mut fields = Vec::new();
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = parse_named_fields(g.stream());
                pos += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple variant `{name}` is not supported"));
            }
            _ => {}
        }
        // Skip an optional discriminant and the trailing comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = skip_meta(&tokens, 0);
    let kind = ident_at(&tokens, pos).ok_or("expected `struct` or `enum`")?;
    pos += 1;
    let name = ident_at(&tokens, pos).ok_or("expected item name")?;
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported"));
        }
    }
    match (kind.as_str(), tokens.get(pos)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            })
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Ok(Item::UnitStruct { name })
        }
        ("struct", _) => Err(format!("tuple struct `{name}` is not supported")),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        _ => Err(format!("cannot derive for `{kind} {name}`")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let out = match item {
        Item::Struct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(vec![{}])\n}}\n}}",
                pairs.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Value::Map(Vec::new())\n}}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!("{name}::{v} => ::serde::Value::Str(String::from({v:?})),")
                    } else {
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(String::from({f:?}), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![\
                             (String::from({v:?}), ::serde::Value::Map(vec![{}]))]),",
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{}\n}}\n}}\n}}",
                arms.join("\n")
            )
        }
    };
    out.parse().unwrap()
}

/// Derive `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let out = match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::map_get(v, {f:?})?)?")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 Ok({name} {{ {} }})\n}}\n}}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
             Ok({name})\n}}\n}}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, fields)| fields.is_empty())
                .map(|(v, _)| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, fields)| !fields.is_empty())
                .map(|(v, fields)| {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::map_get(inner, {f:?})?)?"
                            )
                        })
                        .collect();
                    format!(
                        "{v:?} => {{ let inner = &pairs[0].1; \
                         Ok({name}::{v} {{ {} }}) }}",
                        inits.join(", ")
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 other => Err(::serde::DeError::new(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(pairs) if pairs.len() == 1 => \
                 match pairs[0].0.as_str() {{\n\
                 {data}\n\
                 other => Err(::serde::DeError::new(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 other => Err(::serde::DeError::new(format!(\
                 \"expected {name} variant, found {{other:?}}\"))),\n\
                 }}\n}}\n}}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    out.parse().unwrap()
}
