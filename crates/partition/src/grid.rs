//! The partition grid: `q(i, j) -> {R, S, P}` with incremental accounting.
//!
//! [`Partition`] is the workhorse of the whole reproduction. The assignment
//! itself is stored as per-processor **bit-planes** — one `u64` mask word
//! per 64 columns per row (and a transposed copy per column) — so that:
//!
//! - occupancy counts ([`Partition::rows_occupied`]) are `popcount` over a
//!   single occupied-line mask,
//! - enclosing-rectangle shrink scans are word-wise sweeps
//!   (`trailing_zeros` / `leading_zeros` over the occupied-line masks)
//!   instead of per-line count walks,
//! - the Push engine can sweep a whole canonical line 64 cells at a time
//!   via [`Partition::row_plane_word`] / [`Partition::col_plane_word`].
//!
//! Besides the raw planes it maintains, under every mutation:
//!
//! - `row_count[X][i]` / `col_count[X][j]`: how many elements of processor
//!   `X` live in row `i` / column `j`,
//! - `row_procs[i]` / `col_procs[j]`: the paper's `c_i` / `c_j` — how many
//!   *distinct* processors own elements in that line,
//! - `voc_units`: `Σ_i (c_i - 1) + Σ_j (c_j - 1)`, so that the paper's
//!   Eq. 1 volume of communication is `N * voc_units`,
//! - `elems[X]`: the element count `∈X` of each processor.
//!
//! All of these update in `O(1)` per [`Partition::set`] (the shrink sweep
//! is amortized by the word width), which is what lets the Push engine
//! evaluate the legality (ΔVoC) of a candidate push cheaply and roll it
//! back if illegal.
//!
//! ## Word layout
//!
//! For a plane line of `n` bits, `words_per_line = ceil(n / 64)`. Bit `v`
//! of line `u` lives in word `u * words_per_line + v / 64` at bit position
//! `v % 64` (LSB-first). The tail word of each line keeps its unused high
//! bits at zero — [`Partition::set`] never touches them — so popcounts and
//! word sweeps need no per-call tail masking.

use crate::bits::{full_line, next_occupied, prev_occupied};
use crate::proc_::Proc;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A partition of an `n x n` matrix among processors `R`, `S`, `P`.
///
/// See the [module documentation](self) for the maintained invariants.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    n: usize,
    /// `ceil(n / 64)`: `u64` words per plane line.
    words: usize,
    /// Row-major bit-planes, one per processor: bit `j % 64` of word
    /// `i * words + j / 64` is set iff `q(i, j) = X`.
    row_bits: [Vec<u64>; 3],
    /// Column-major (transposed) bit-planes: bit `i % 64` of word
    /// `j * words + i / 64` is set iff `q(i, j) = X`.
    col_bits: [Vec<u64>; 3],
    /// Occupied-row mask per processor: bit `i` set iff
    /// `row_count[X][i] > 0`. One plane line of `n` bits.
    row_occ: [Vec<u64>; 3],
    /// Occupied-column mask per processor: bit `j` set iff
    /// `col_count[X][j] > 0`.
    col_occ: [Vec<u64>; 3],
    /// `row_count[X][i]`: elements of processor `X` in row `i`.
    row_count: [Vec<u32>; 3],
    /// `col_count[X][j]`: elements of processor `X` in column `j`.
    col_count: [Vec<u32>; 3],
    /// `c_i`: number of distinct processors in each row.
    row_procs: Vec<u8>,
    /// `c_j`: number of distinct processors in each column.
    col_procs: Vec<u8>,
    /// `Σ_i (c_i - 1) + Σ_j (c_j - 1)`; `VoC = n * voc_units`.
    voc_units: u64,
    /// `∈X` per processor.
    elems: [usize; 3],
    /// Zobrist-style state hash, maintained incrementally: XOR of a mixed
    /// key per `(cell, owner)` pair. Lets the Push DFA detect revisited
    /// states (VoC-neutral cycles) in `O(1)`. The key schedule
    /// (`mix64(idx * 3 + q)` over row-major `idx`) is independent of the
    /// plane storage, so hashes are stable across representation changes.
    zobrist: u64,
    /// Per-processor enclosing-rectangle bounds, maintained incrementally
    /// in [`Partition::set`] like the Zobrist hash, making
    /// [`Partition::enclosing_rect`] an `O(1)` read. Canonical: exactly the
    /// bounding box while the processor owns any element, and
    /// [`Bounds::EMPTY`] otherwise, so the derived `Eq`/serde stay
    /// content-addressed regardless of mutation history.
    bounds: [Bounds; 3],
}

/// Incrementally maintained bounding box of one processor's cells
/// (inclusive on all four sides).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
struct Bounds {
    top: usize,
    bottom: usize,
    left: usize,
    right: usize,
}

impl Bounds {
    /// Canonical "no elements" value; recognizable by `top > bottom`, and
    /// chosen so that [`Bounds::expand`] from empty yields the single-cell
    /// box directly.
    const EMPTY: Bounds = Bounds {
        top: usize::MAX,
        bottom: 0,
        left: usize::MAX,
        right: 0,
    };

    #[inline]
    fn expand(&mut self, i: usize, j: usize) {
        self.top = self.top.min(i);
        self.bottom = self.bottom.max(i);
        self.left = self.left.min(j);
        self.right = self.right.max(j);
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixer used to derive the
/// per-(cell, owner) Zobrist keys without storing a table.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Partition {
    /// A partition with every element assigned to `fill`.
    ///
    /// The paper's random `q0` generator starts from an all-`P` matrix
    /// (Section VI-A-2).
    pub fn new(n: usize, fill: Proc) -> Partition {
        assert!(n > 0, "matrix size must be positive");
        let words = n.div_ceil(64);
        let counts_full = vec![n as u32; n];
        let counts_zero = vec![0u32; n];
        let mut row_count = [
            counts_zero.clone(),
            counts_zero.clone(),
            counts_zero.clone(),
        ];
        let mut col_count = row_count.clone();
        row_count[fill.idx()] = counts_full.clone();
        col_count[fill.idx()] = counts_full;
        let line = full_line(n);
        let plane_full: Vec<u64> = line
            .iter()
            .copied()
            .cycle()
            .take(words * n)
            .collect::<Vec<_>>();
        let plane_empty = vec![0u64; words * n];
        let occ_empty = vec![0u64; words];
        let mut row_bits = [plane_empty.clone(), plane_empty.clone(), plane_empty];
        let mut col_bits = row_bits.clone();
        row_bits[fill.idx()] = plane_full.clone();
        col_bits[fill.idx()] = plane_full;
        let mut row_occ = [occ_empty.clone(), occ_empty.clone(), occ_empty];
        let mut col_occ = row_occ.clone();
        row_occ[fill.idx()] = line.clone();
        col_occ[fill.idx()] = line;
        let mut elems = [0usize; 3];
        elems[fill.idx()] = n * n;
        let mut zobrist = 0u64;
        for idx in 0..(n * n) as u64 {
            zobrist ^= mix64(idx * 3 + u64::from(fill.q()));
        }
        let mut bounds = [Bounds::EMPTY; 3];
        bounds[fill.idx()] = Bounds {
            top: 0,
            bottom: n - 1,
            left: 0,
            right: n - 1,
        };
        Partition {
            n,
            words,
            row_bits,
            col_bits,
            row_occ,
            col_occ,
            row_count,
            col_count,
            row_procs: vec![1; n],
            col_procs: vec![1; n],
            voc_units: 0,
            elems,
            zobrist,
            bounds,
        }
    }

    /// Build a partition by evaluating `f(i, j)` for every cell.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> Proc) -> Partition {
        let mut part = Partition::new(n, Proc::P);
        for i in 0..n {
            for j in 0..n {
                part.set(i, j, f(i, j));
            }
        }
        part
    }

    /// Matrix dimension `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `ceil(n / 64)`: how many `u64` words make up one plane line.
    #[inline]
    pub fn words_per_line(&self) -> usize {
        self.words
    }

    /// Word `w` of processor `proc`'s row-plane line `i`: bit `b` is set
    /// iff `q(i, w * 64 + b) = proc`.
    #[inline]
    pub fn row_plane_word(&self, proc: Proc, i: usize, w: usize) -> u64 {
        self.row_bits[proc.idx()][i * self.words + w]
    }

    /// Word `w` of processor `proc`'s column-plane line `j`: bit `b` is set
    /// iff `q(w * 64 + b, j) = proc`.
    #[inline]
    pub fn col_plane_word(&self, proc: Proc, j: usize, w: usize) -> u64 {
        self.col_bits[proc.idx()][j * self.words + w]
    }

    /// The processor assigned to cell `(i, j)`: two plane-word probes.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Proc {
        debug_assert!(i < self.n && j < self.n);
        let w = i * self.words + j / 64;
        let bit = 1u64 << (j % 64);
        if self.row_bits[0][w] & bit != 0 {
            Proc::from_q(0)
        } else if self.row_bits[1][w] & bit != 0 {
            Proc::from_q(1)
        } else {
            debug_assert!(self.row_bits[2][w] & bit != 0, "cell owned by nobody");
            Proc::from_q(2)
        }
    }

    /// Reassign cell `(i, j)` to `proc`, returning the previous owner.
    ///
    /// Updates every derived count in `O(1)` (plus an amortized word-wise
    /// boundary sweep when a boundary line of the losing processor empties).
    pub fn set(&mut self, i: usize, j: usize, proc: Proc) -> Proc {
        let old = self.get(i, j);
        if old == proc {
            return old;
        }
        let rw = i * self.words + j / 64;
        let rbit = 1u64 << (j % 64);
        let cw = j * self.words + i / 64;
        let cbit = 1u64 << (i % 64);
        self.row_bits[old.idx()][rw] &= !rbit;
        self.row_bits[proc.idx()][rw] |= rbit;
        self.col_bits[old.idx()][cw] &= !cbit;
        self.col_bits[proc.idx()][cw] |= cbit;
        self.elems[old.idx()] -= 1;
        self.elems[proc.idx()] += 1;
        let idx = i * self.n + j;
        self.zobrist ^= mix64(idx as u64 * 3 + u64::from(old.q()))
            ^ mix64(idx as u64 * 3 + u64::from(proc.q()));

        // Row i bookkeeping.
        let ow = i / 64;
        let obit = 1u64 << (i % 64);
        let rc_old = &mut self.row_count[old.idx()][i];
        *rc_old -= 1;
        let row_emptied = *rc_old == 0;
        if row_emptied {
            self.row_procs[i] -= 1;
            self.voc_units -= 1;
            self.row_occ[old.idx()][ow] &= !obit;
        }
        let rc_new = &mut self.row_count[proc.idx()][i];
        if *rc_new == 0 {
            self.row_procs[i] += 1;
            self.voc_units += 1;
            self.row_occ[proc.idx()][ow] |= obit;
        }
        *rc_new += 1;

        // Column j bookkeeping.
        let ow = j / 64;
        let obit = 1u64 << (j % 64);
        let cc_old = &mut self.col_count[old.idx()][j];
        *cc_old -= 1;
        let col_emptied = *cc_old == 0;
        if col_emptied {
            self.col_procs[j] -= 1;
            self.voc_units -= 1;
            self.col_occ[old.idx()][ow] &= !obit;
        }
        let cc_new = &mut self.col_count[proc.idx()][j];
        if *cc_new == 0 {
            self.col_procs[j] += 1;
            self.voc_units += 1;
            self.col_occ[proc.idx()][ow] |= obit;
        }
        *cc_new += 1;

        // Enclosing-rectangle bookkeeping. The gaining processor expands in
        // O(1); the losing processor shrinks by sweeping its occupied-line
        // mask inward from a boundary line that just emptied — only then,
        // word-wise, and never past the opposite edge (some line is nonzero
        // while the processor owns elements).
        self.bounds[proc.idx()].expand(i, j);
        let mut scans = 0u64;
        if self.elems[old.idx()] == 0 {
            self.bounds[old.idx()] = Bounds::EMPTY;
        } else {
            let b = &mut self.bounds[old.idx()];
            if row_emptied {
                let occ = &self.row_occ[old.idx()];
                if i == b.top {
                    let (t, s) = next_occupied(occ, b.top);
                    b.top = t;
                    scans += s;
                }
                if i == b.bottom {
                    let (t, s) = prev_occupied(occ, b.bottom);
                    b.bottom = t;
                    scans += s;
                }
            }
            if col_emptied {
                let occ = &self.col_occ[old.idx()];
                if j == b.left {
                    let (l, s) = next_occupied(occ, b.left);
                    b.left = l;
                    scans += s;
                }
                if j == b.right {
                    let (l, s) = prev_occupied(occ, b.right);
                    b.right = l;
                    scans += s;
                }
            }
        }
        if scans != 0 && hetmmm_obs::metrics_enabled() {
            hetmmm_obs::metrics()
                .counter(hetmmm_obs::metrics::names::GRID_SHRINK_WORD_SCANS)
                .add(scans);
        }

        old
    }

    /// Swap the assignments of two cells. A no-op if they match.
    pub fn swap(&mut self, a: (usize, usize), b: (usize, usize)) {
        let pa = self.get(a.0, a.1);
        let pb = self.get(b.0, b.1);
        if pa == pb {
            return;
        }
        self.set(a.0, a.1, pb);
        self.set(b.0, b.1, pa);
    }

    /// `∈X`: the number of elements assigned to `proc`.
    #[inline]
    pub fn elems(&self, proc: Proc) -> usize {
        self.elems[proc.idx()]
    }

    /// Elements of `proc` in row `i`.
    #[inline]
    pub fn row_count(&self, proc: Proc, i: usize) -> u32 {
        self.row_count[proc.idx()][i]
    }

    /// Elements of `proc` in column `j`.
    #[inline]
    pub fn col_count(&self, proc: Proc, j: usize) -> u32 {
        self.col_count[proc.idx()][j]
    }

    /// The paper's `row(q, i, X)` predicate: does row `i` contain any element
    /// of `proc`? (Section VI-B.)
    #[inline]
    pub fn row_has(&self, proc: Proc, i: usize) -> bool {
        self.row_count[proc.idx()][i] > 0
    }

    /// The paper's `col(q, j, X)` predicate.
    #[inline]
    pub fn col_has(&self, proc: Proc, j: usize) -> bool {
        self.col_count[proc.idx()][j] > 0
    }

    /// `c_i`: number of distinct processors owning elements in row `i`.
    #[inline]
    pub fn procs_in_row(&self, i: usize) -> u8 {
        self.row_procs[i]
    }

    /// `c_j`: number of distinct processors owning elements in column `j`.
    #[inline]
    pub fn procs_in_col(&self, j: usize) -> u8 {
        self.col_procs[j]
    }

    /// `i_X`: the number of rows containing elements of `proc`
    /// (used by the PCB model, Eq. 6). A popcount over the occupied-row
    /// mask: `ceil(n / 64)` words instead of `n` counter loads.
    pub fn rows_occupied(&self, proc: Proc) -> usize {
        let _span = hetmmm_obs::fine_span("partition.occupancy");
        let mask = &self.row_occ[proc.idx()];
        if hetmmm_obs::metrics_enabled() {
            hetmmm_obs::metrics()
                .counter(hetmmm_obs::metrics::names::GRID_POPCOUNT_WORDS)
                .add(mask.len() as u64);
        }
        mask.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `j_X`: the number of columns containing elements of `proc`.
    pub fn cols_occupied(&self, proc: Proc) -> usize {
        let _span = hetmmm_obs::fine_span("partition.occupancy");
        let mask = &self.col_occ[proc.idx()];
        if hetmmm_obs::metrics_enabled() {
            hetmmm_obs::metrics()
                .counter(hetmmm_obs::metrics::names::GRID_POPCOUNT_WORDS)
                .add(mask.len() as u64);
        }
        mask.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `Σ_i (c_i - 1) + Σ_j (c_j - 1)`, the volume of communication in units
    /// of "lines": `VoC = N * voc_units()` (Eq. 1).
    #[inline]
    pub fn voc_units(&self) -> u64 {
        self.voc_units
    }

    /// The paper's Eq. 1 volume of communication, in elements.
    #[inline]
    pub fn voc(&self) -> u64 {
        self.n as u64 * self.voc_units
    }

    /// A 64-bit hash of the full assignment, maintained incrementally
    /// (Zobrist hashing). Equal partitions always hash equal; the DFA uses
    /// it to detect revisited states in VoC-neutral push cycles.
    #[inline]
    pub fn state_hash(&self) -> u64 {
        self.zobrist
    }

    /// The enclosing rectangle of `proc` (Fig. 4), or `None` if the processor
    /// owns no elements. `O(1)` read of the incrementally maintained bounds.
    pub fn enclosing_rect(&self, proc: Proc) -> Option<Rect> {
        let _span = hetmmm_obs::fine_span("partition.enclosing_rect");
        let b = self.bounds[proc.idx()];
        if b.top > b.bottom {
            return None;
        }
        Some(Rect::new(b.top, b.bottom, b.left, b.right))
    }

    /// Iterate over the cells assigned to `proc`, row-major (word-wise
    /// bit extraction, LSB first, so the order matches the old per-cell
    /// scan exactly — seeded shuffles over this order are unchanged).
    pub fn cells_of(&self, proc: Proc) -> impl Iterator<Item = (usize, usize)> + '_ {
        let words = self.words;
        let plane = &self.row_bits[proc.idx()];
        (0..self.n).flat_map(move |i| {
            (0..words).flat_map(move |w| {
                let mut m = plane[i * words + w];
                std::iter::from_fn(move || {
                    if m == 0 {
                        return None;
                    }
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    Some((i, w * 64 + b))
                })
            })
        })
    }

    /// Assign every cell of `rect` to `proc`.
    pub fn fill_rect(&mut self, rect: Rect, proc: Proc) {
        assert!(
            rect.bottom < self.n && rect.right < self.n,
            "rect out of bounds"
        );
        for (i, j) in rect.cells() {
            self.set(i, j, proc);
        }
    }

    /// Does `proc` exactly fill its enclosing rectangle? (A *rectangular*
    /// processor in the strict sense.)
    pub fn is_exact_rect(&self, proc: Proc) -> bool {
        match self.enclosing_rect(proc) {
            None => false,
            Some(rect) => rect.area() == self.elems(proc),
        }
    }

    /// Fully recompute every derived count from the raw bit-planes and panic
    /// on any mismatch, including plane mutual-exclusion/coverage, the
    /// transposed column planes, occupied-line masks, and tail-bit hygiene.
    /// Test/debug aid; `O(N²)`.
    #[allow(clippy::needless_range_loop)] // index math mirrors the derivation being checked
    pub fn assert_invariants(&self) {
        let n = self.n;
        let words = self.words;
        assert_eq!(words, n.div_ceil(64), "words_per_line drift");
        // Reconstruct the ownership map from the row planes, checking that
        // exactly one plane claims each cell and the column planes agree.
        let mut cells = vec![0u8; n * n];
        for i in 0..n {
            for j in 0..n {
                let bit = 1u64 << (j % 64);
                let owners: Vec<usize> = (0..3)
                    .filter(|&p| self.row_bits[p][i * words + j / 64] & bit != 0)
                    .collect();
                assert_eq!(
                    owners.len(),
                    1,
                    "cell ({i}, {j}) claimed by {} row planes",
                    owners.len()
                );
                let p = owners[0];
                cells[i * n + j] = p as u8;
                let cbit = 1u64 << (i % 64);
                for q in 0..3 {
                    let has = self.col_bits[q][j * words + i / 64] & cbit != 0;
                    assert_eq!(has, q == p, "col plane {q} disagrees at ({i}, {j})");
                }
            }
        }
        // Tail bits above n must stay zero in every plane line and mask.
        let tail = n % 64;
        if tail != 0 {
            let junk = !((1u64 << tail) - 1);
            for p in 0..3 {
                for u in 0..n {
                    assert_eq!(
                        self.row_bits[p][u * words + words - 1] & junk,
                        0,
                        "row plane tail junk"
                    );
                    assert_eq!(
                        self.col_bits[p][u * words + words - 1] & junk,
                        0,
                        "col plane tail junk"
                    );
                }
                assert_eq!(self.row_occ[p][words - 1] & junk, 0, "row_occ tail junk");
                assert_eq!(self.col_occ[p][words - 1] & junk, 0, "col_occ tail junk");
            }
        }
        let mut row_count = [vec![0u32; n], vec![0u32; n], vec![0u32; n]];
        let mut col_count = row_count.clone();
        let mut elems = [0usize; 3];
        for i in 0..n {
            for j in 0..n {
                let p = cells[i * n + j] as usize;
                row_count[p][i] += 1;
                col_count[p][j] += 1;
                elems[p] += 1;
            }
        }
        assert_eq!(row_count, self.row_count, "row_count drift");
        assert_eq!(col_count, self.col_count, "col_count drift");
        assert_eq!(elems, self.elems, "elems drift");
        // Occupied-line masks must mirror the counts bit-for-bit.
        for p in 0..3 {
            for i in 0..n {
                let bit = self.row_occ[p][i / 64] >> (i % 64) & 1;
                assert_eq!(bit == 1, row_count[p][i] > 0, "row_occ drift at row {i}");
            }
            for j in 0..n {
                let bit = self.col_occ[p][j / 64] >> (j % 64) & 1;
                assert_eq!(bit == 1, col_count[p][j] > 0, "col_occ drift at col {j}");
            }
        }
        let mut voc_units = 0u64;
        for i in 0..n {
            let c_i = Proc::ALL
                .iter()
                .filter(|p| row_count[p.idx()][i] > 0)
                .count() as u8;
            assert_eq!(c_i, self.row_procs[i], "row_procs drift at row {i}");
            voc_units += u64::from(c_i) - 1;
        }
        for j in 0..n {
            let c_j = Proc::ALL
                .iter()
                .filter(|p| col_count[p.idx()][j] > 0)
                .count() as u8;
            assert_eq!(c_j, self.col_procs[j], "col_procs drift at col {j}");
            voc_units += u64::from(c_j) - 1;
        }
        assert_eq!(voc_units, self.voc_units, "voc_units drift");
        let mut zobrist = 0u64;
        for (idx, &q) in cells.iter().enumerate() {
            zobrist ^= mix64(idx as u64 * 3 + u64::from(q));
        }
        assert_eq!(zobrist, self.zobrist, "zobrist drift");
        let mut bounds = [Bounds::EMPTY; 3];
        for i in 0..n {
            for j in 0..n {
                let p = cells[i * n + j] as usize;
                bounds[p].expand(i, j);
            }
        }
        assert_eq!(bounds, self.bounds, "enclosing-rect bounds drift");
    }
}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Partition(n={}, voc={}, elems R={} S={} P={})",
            self.n,
            self.voc(),
            self.elems(Proc::R),
            self.elems(Proc::S),
            self.elems(Proc::P),
        )?;
        if self.n <= 64 {
            for i in 0..self.n {
                for j in 0..self.n {
                    write!(f, "{}", self.get(i, j).letter())?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_uniform() {
        let p = Partition::new(8, Proc::P);
        assert_eq!(p.elems(Proc::P), 64);
        assert_eq!(p.elems(Proc::R), 0);
        assert_eq!(p.voc(), 0);
        assert_eq!(p.enclosing_rect(Proc::P), Some(Rect::new(0, 7, 0, 7)));
        assert_eq!(p.enclosing_rect(Proc::R), None);
        p.assert_invariants();
    }

    #[test]
    fn set_updates_counts_and_voc() {
        let mut p = Partition::new(4, Proc::P);
        p.set(1, 2, Proc::R);
        // Row 1 and column 2 now have two processors each: +2 line units.
        assert_eq!(p.voc_units(), 2);
        assert_eq!(p.voc(), 8);
        assert_eq!(p.elems(Proc::R), 1);
        assert_eq!(p.procs_in_row(1), 2);
        assert_eq!(p.procs_in_col(2), 2);
        p.assert_invariants();

        // Setting back restores everything.
        p.set(1, 2, Proc::P);
        assert_eq!(p.voc(), 0);
        assert_eq!(p.elems(Proc::R), 0);
        p.assert_invariants();
    }

    #[test]
    fn three_procs_in_one_row() {
        let mut p = Partition::new(3, Proc::P);
        p.set(0, 0, Proc::R);
        p.set(0, 1, Proc::S);
        assert_eq!(p.procs_in_row(0), 3);
        // Row 0 contributes 2 units; columns 0 and 1 contribute 1 each.
        assert_eq!(p.voc_units(), 4);
        p.assert_invariants();
    }

    #[test]
    fn swap_preserves_elem_counts() {
        let mut p = Partition::new(5, Proc::P);
        p.set(0, 0, Proc::R);
        p.set(4, 4, Proc::S);
        let before = [p.elems(Proc::R), p.elems(Proc::S), p.elems(Proc::P)];
        p.swap((0, 0), (4, 4));
        let after = [p.elems(Proc::R), p.elems(Proc::S), p.elems(Proc::P)];
        assert_eq!(before, after);
        assert_eq!(p.get(0, 0), Proc::S);
        assert_eq!(p.get(4, 4), Proc::R);
        p.assert_invariants();
    }

    #[test]
    fn swap_same_proc_is_noop() {
        let mut p = Partition::new(3, Proc::P);
        let before = p.clone();
        p.swap((0, 0), (2, 2));
        assert_eq!(p, before);
    }

    #[test]
    fn enclosing_rect_tracks_extremes() {
        let mut p = Partition::new(10, Proc::P);
        p.set(2, 3, Proc::R);
        p.set(7, 5, Proc::R);
        assert_eq!(p.enclosing_rect(Proc::R), Some(Rect::new(2, 7, 3, 5)));
        p.set(2, 3, Proc::P);
        assert_eq!(p.enclosing_rect(Proc::R), Some(Rect::new(7, 7, 5, 5)));
    }

    #[test]
    fn fill_rect_and_exact_rect() {
        let mut p = Partition::new(8, Proc::P);
        p.fill_rect(Rect::new(2, 4, 1, 3), Proc::R);
        assert!(p.is_exact_rect(Proc::R));
        assert_eq!(p.elems(Proc::R), 9);
        p.set(2, 1, Proc::S);
        assert!(!p.is_exact_rect(Proc::R));
        p.assert_invariants();
    }

    #[test]
    fn rows_cols_occupied() {
        let mut p = Partition::new(6, Proc::P);
        p.fill_rect(Rect::new(0, 2, 0, 1), Proc::S);
        assert_eq!(p.rows_occupied(Proc::S), 3);
        assert_eq!(p.cols_occupied(Proc::S), 2);
        assert_eq!(p.rows_occupied(Proc::P), 6);
        assert_eq!(p.cols_occupied(Proc::P), 6);
    }

    #[test]
    fn voc_matches_eq1_definition() {
        // Traditional three horizontal strips: every column has 3 procs,
        // every row exactly 1. VoC = N * N * 2 (columns only).
        let n = 9;
        let p = Partition::from_fn(n, |i, _| {
            if i < 3 {
                Proc::P
            } else if i < 6 {
                Proc::R
            } else {
                Proc::S
            }
        });
        assert_eq!(p.voc(), (n * n * 2) as u64);
        p.assert_invariants();
    }

    #[test]
    fn from_fn_matches_get() {
        let p = Partition::from_fn(5, |i, j| if (i + j) % 2 == 0 { Proc::R } else { Proc::S });
        for i in 0..5 {
            for j in 0..5 {
                let want = if (i + j) % 2 == 0 { Proc::R } else { Proc::S };
                assert_eq!(p.get(i, j), want);
            }
        }
    }

    #[test]
    fn bounds_shrink_through_interior_and_edge_removals() {
        let mut p = Partition::new(12, Proc::P);
        p.fill_rect(Rect::new(2, 9, 3, 8), Proc::R);
        assert_eq!(p.enclosing_rect(Proc::R), Some(Rect::new(2, 9, 3, 8)));
        // Empty the top boundary row: top must skip past it.
        for j in 3..=8 {
            p.set(2, j, Proc::P);
        }
        assert_eq!(p.enclosing_rect(Proc::R), Some(Rect::new(3, 9, 3, 8)));
        // Empty two boundary columns in one go (left edge 3 then 4).
        for i in 3..=9 {
            p.set(i, 3, Proc::P);
            p.set(i, 4, Proc::P);
        }
        assert_eq!(p.enclosing_rect(Proc::R), Some(Rect::new(3, 9, 5, 8)));
        // Interior removals never move the box.
        p.set(5, 6, Proc::S);
        assert_eq!(p.enclosing_rect(Proc::R), Some(Rect::new(3, 9, 5, 8)));
        // Remove everything: back to None, and re-adding restarts cleanly.
        for (i, j) in Rect::new(3, 9, 5, 8).cells() {
            p.set(i, j, Proc::P);
        }
        assert_eq!(p.enclosing_rect(Proc::R), None);
        p.set(11, 0, Proc::R);
        assert_eq!(p.enclosing_rect(Proc::R), Some(Rect::new(11, 11, 0, 0)));
        p.assert_invariants();
    }

    #[test]
    fn bounds_match_scan_recompute_on_random_set_sequences() {
        // Deterministic pseudo-random set() churn; after every mutation the
        // incremental bounds must equal a from-scratch scan.
        let n = 16;
        let mut p = Partition::new(n, Proc::P);
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let r = next();
            let i = (r as usize >> 8) % n;
            let j = (r as usize >> 24) % n;
            let proc = Proc::from_q((r % 3) as u8);
            p.set(i, j, proc);
            for q in Proc::ALL {
                let scan = {
                    let rows: Vec<usize> = (0..n).filter(|&i| p.row_has(q, i)).collect();
                    let cols: Vec<usize> = (0..n).filter(|&j| p.col_has(q, j)).collect();
                    match (rows.first(), rows.last(), cols.first(), cols.last()) {
                        (Some(&t), Some(&b), Some(&l), Some(&r)) => Some(Rect::new(t, b, l, r)),
                        _ => None,
                    }
                };
                assert_eq!(p.enclosing_rect(q), scan);
            }
        }
        p.assert_invariants();
    }

    #[test]
    fn state_hash_tracks_content_not_history() {
        let mut a = Partition::new(6, Proc::P);
        a.set(1, 1, Proc::R);
        a.set(2, 2, Proc::S);
        let mut b = Partition::new(6, Proc::P);
        b.set(2, 2, Proc::S);
        b.set(1, 1, Proc::R);
        assert_eq!(a.state_hash(), b.state_hash());
        a.set(1, 1, Proc::P);
        assert_ne!(a.state_hash(), b.state_hash());
        a.set(1, 1, Proc::R);
        assert_eq!(a.state_hash(), b.state_hash());
    }

    /// Reference implementation: the pre-bit-plane element→owner `Vec`,
    /// recomputed from scratch. The keep-alive oracle below pins the planes
    /// against it after arbitrary `set` churn.
    struct VecOracle {
        n: usize,
        cells: Vec<u8>,
    }

    impl VecOracle {
        fn new(n: usize, fill: Proc) -> VecOracle {
            VecOracle {
                n,
                cells: vec![fill.q(); n * n],
            }
        }

        fn set(&mut self, i: usize, j: usize, proc: Proc) {
            self.cells[i * self.n + j] = proc.q();
        }

        fn rect(&self, proc: Proc) -> Option<Rect> {
            let q = proc.q();
            let mut b: Option<(usize, usize, usize, usize)> = None;
            for i in 0..self.n {
                for j in 0..self.n {
                    if self.cells[i * self.n + j] == q {
                        let e = b.get_or_insert((i, i, j, j));
                        e.0 = e.0.min(i);
                        e.1 = e.1.max(i);
                        e.2 = e.2.min(j);
                        e.3 = e.3.max(j);
                    }
                }
            }
            b.map(|(t, bo, l, r)| Rect::new(t, bo, l, r))
        }

        fn rows_occupied(&self, proc: Proc) -> usize {
            let q = proc.q();
            (0..self.n)
                .filter(|&i| (0..self.n).any(|j| self.cells[i * self.n + j] == q))
                .count()
        }

        fn cols_occupied(&self, proc: Proc) -> usize {
            let q = proc.q();
            (0..self.n)
                .filter(|&j| (0..self.n).any(|i| self.cells[i * self.n + j] == q))
                .count()
        }
    }

    fn churn_against_oracle(n: usize, steps: usize, seed: u64) {
        let mut p = Partition::new(n, Proc::P);
        let mut oracle = VecOracle::new(n, Proc::P);
        let mut state = seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..steps {
            let r = next();
            let i = (r as usize >> 8) % n;
            let j = (r as usize >> 24) % n;
            let proc = Proc::from_q((r % 3) as u8);
            p.set(i, j, proc);
            oracle.set(i, j, proc);
        }
        // Keep-alive ownership oracle: every cell, every derived quantity.
        for i in 0..n {
            for j in 0..n {
                assert_eq!(p.get(i, j).q(), oracle.cells[i * n + j], "({i}, {j})");
            }
        }
        for q in Proc::ALL {
            assert_eq!(p.enclosing_rect(q), oracle.rect(q));
            assert_eq!(p.rows_occupied(q), oracle.rows_occupied(q));
            assert_eq!(p.cols_occupied(q), oracle.cols_occupied(q));
        }
        let got: Vec<(usize, usize)> = p.cells_of(Proc::R).collect();
        let want: Vec<(usize, usize)> = (0..n * n)
            .filter(|&idx| oracle.cells[idx] == Proc::R.q())
            .map(|idx| (idx / n, idx % n))
            .collect();
        assert_eq!(got, want, "cells_of order drift");
        p.assert_invariants();
    }

    #[test]
    fn bitplanes_match_vec_oracle_after_random_churn() {
        churn_against_oracle(16, 3000, 0x9E37_79B9_7F4A_7C15);
    }

    #[test]
    fn tail_word_masking_n_not_multiple_of_64() {
        // n = 65 straddles a word boundary by one bit; n = 100 has a
        // 36-bit tail word. Both must behave identically to the oracle.
        churn_against_oracle(65, 4000, 0xDEAD_BEEF_CAFE_F00D);
        churn_against_oracle(100, 4000, 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn word_boundary_sizes_round_trip() {
        // n = 2 is the smallest size whose transient voc accounting stays
        // nonnegative (at n = 1 emptying the only row underflows before
        // the gaining processor restores it — true of the bookkeeping
        // order since the Vec representation, not a plane artifact).
        for n in [2, 63, 64, 128] {
            churn_against_oracle(n, 500.min(n * n * 4), n as u64 + 1);
        }
    }

    #[test]
    fn single_row_and_single_column_partitions() {
        // One processor confined to a single row: rect is 1 line tall,
        // occupancy counts collapse to the line counts.
        let n = 70;
        let mut p = Partition::new(n, Proc::P);
        for j in 10..50 {
            p.set(3, j, Proc::R);
        }
        assert_eq!(p.enclosing_rect(Proc::R), Some(Rect::new(3, 3, 10, 49)));
        assert_eq!(p.rows_occupied(Proc::R), 1);
        assert_eq!(p.cols_occupied(Proc::R), 40);
        // And a single column crossing the word boundary at bit 64.
        for i in 60..n {
            p.set(i, 65, Proc::S);
        }
        assert_eq!(p.enclosing_rect(Proc::S), Some(Rect::new(60, 69, 65, 65)));
        assert_eq!(p.rows_occupied(Proc::S), 10);
        assert_eq!(p.cols_occupied(Proc::S), 1);
        p.assert_invariants();
    }

    #[test]
    fn plane_word_accessors_expose_the_documented_layout() {
        let n = 70;
        let mut p = Partition::new(n, Proc::P);
        p.set(2, 3, Proc::R);
        p.set(2, 67, Proc::R);
        assert_eq!(p.words_per_line(), 2);
        assert_eq!(p.row_plane_word(Proc::R, 2, 0), 1u64 << 3);
        assert_eq!(p.row_plane_word(Proc::R, 2, 1), 1u64 << 3); // bit 67 - 64
        assert_eq!(p.col_plane_word(Proc::R, 3, 0), 1u64 << 2);
        assert_eq!(p.col_plane_word(Proc::R, 67, 0), 1u64 << 2);
        // The P plane lost exactly those bits.
        assert_eq!(p.row_plane_word(Proc::P, 2, 0), !(1u64 << 3));
        let tail = (1u64 << (n - 64)) - 1;
        assert_eq!(p.row_plane_word(Proc::P, 2, 1), tail & !(1u64 << 3));
    }
}
