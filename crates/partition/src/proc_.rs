//! Processors and heterogeneous speed ratios.
//!
//! The paper (Section IV, assumption 2) names the three processors `P`, `R`
//! and `S`, where `P` is the fastest and the relative speeds are
//! `P_r : R_r : S_r` with `S_r = 1` in the paper's experiments. We keep the
//! paper's element encoding `q(i,j) ∈ {0 = R, 1 = S, 2 = P}`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the three heterogeneous processors.
///
/// Discriminant values match the paper's partition function `q`:
/// `R = 0`, `S = 1`, `P = 2` (Section IV). `P` is the fastest processor and
/// is assigned the matrix remainder in all candidate shapes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum Proc {
    /// Middle processor (paper: gray). Encoded as `q = 0`.
    R = 0,
    /// Slowest processor (paper: black, speed normalized to 1). Encoded as `q = 1`.
    S = 1,
    /// Fastest processor (paper: white). Encoded as `q = 2`.
    P = 2,
}

impl Proc {
    /// All three processors, in `q`-encoding order `[R, S, P]`.
    pub const ALL: [Proc; 3] = [Proc::R, Proc::S, Proc::P];

    /// The two processors the paper ever selects as *active* for a Push:
    /// pushes act on the slower processors, never on `P` (Section VI-C).
    pub const PUSHABLE: [Proc; 2] = [Proc::R, Proc::S];

    /// Decode from the paper's `q` value. Panics on values `> 2`.
    #[inline]
    pub fn from_q(q: u8) -> Proc {
        match q {
            0 => Proc::R,
            1 => Proc::S,
            2 => Proc::P,
            // hetmmm-lint: allow(L001) documented-panicking API on the DFA hot path; has a should_panic test
            _ => panic!("invalid q encoding {q}: must be 0 (R), 1 (S) or 2 (P)"),
        }
    }

    /// The paper's `q` encoding of this processor.
    #[inline]
    pub fn q(self) -> u8 {
        self as u8
    }

    /// Index usable for `[T; 3]` arrays keyed by processor.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// The other two processors, i.e. every processor except `self`.
    #[inline]
    pub fn others(self) -> [Proc; 2] {
        match self {
            Proc::R => [Proc::S, Proc::P],
            Proc::S => [Proc::R, Proc::P],
            Proc::P => [Proc::R, Proc::S],
        }
    }

    /// Single-letter name used in renders and debug output.
    #[inline]
    pub fn letter(self) -> char {
        match self {
            Proc::R => 'R',
            Proc::S => 'S',
            Proc::P => 'P',
        }
    }
}

impl fmt::Display for Proc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A relative processing-speed ratio `P_r : R_r : S_r` (Section IV,
/// assumption 2).
///
/// The paper normalizes `S_r = 1`; we allow any positive integers but provide
/// [`Ratio::normalized`] mirroring the paper's convention. The ratio
/// determines the number of matrix elements assigned to each processor: the
/// element share of processor `X` is `X_r / T` where `T = P_r + R_r + S_r`
/// (Section IX-B, Eq. 12).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Ratio {
    /// Speed of the fastest processor `P`.
    pub p: u32,
    /// Speed of the middle processor `R`.
    pub r: u32,
    /// Speed of the slowest processor `S` (paper convention: 1).
    pub s: u32,
}

impl Ratio {
    /// Create a ratio `P_r : R_r : S_r`. Panics if any component is zero or
    /// the ordering `P_r >= R_r >= S_r` required by the paper's naming
    /// convention is violated.
    pub fn new(p: u32, r: u32, s: u32) -> Ratio {
        assert!(p > 0 && r > 0 && s > 0, "ratio components must be positive");
        assert!(
            p >= r && r >= s,
            "ratio must satisfy P_r >= R_r >= S_r (got {p}:{r}:{s}); \
             relabel the processors"
        );
        Ratio { p, r, s }
    }

    /// The eleven ratios studied in the paper's experiments (Section VII).
    pub const PAPER_RATIOS: [(u32, u32, u32); 11] = [
        (2, 1, 1),
        (3, 1, 1),
        (4, 1, 1),
        (5, 1, 1),
        (10, 1, 1),
        (2, 2, 1),
        (3, 2, 1),
        (4, 2, 1),
        (5, 2, 1),
        (5, 3, 1),
        (5, 4, 1),
    ];

    /// All paper ratios as [`Ratio`] values.
    pub fn paper_ratios() -> Vec<Ratio> {
        Self::PAPER_RATIOS
            .iter()
            .map(|&(p, r, s)| Ratio::new(p, r, s))
            .collect()
    }

    /// `T = P_r + R_r + S_r` (Eq. 12).
    #[inline]
    pub fn total(self) -> u32 {
        self.p + self.r + self.s
    }

    /// Speed of a given processor.
    #[inline]
    pub fn speed(self, proc: Proc) -> u32 {
        match proc {
            Proc::P => self.p,
            Proc::R => self.r,
            Proc::S => self.s,
        }
    }

    /// Fraction of the matrix assigned to `proc`: `X_r / T`.
    #[inline]
    pub fn share(self, proc: Proc) -> f64 {
        f64::from(self.speed(proc)) / f64::from(self.total())
    }

    /// The ratio normalized so `S_r = 1` as in the paper, returned as floats
    /// `(P_r, R_r)` with `S_r = 1` implied.
    pub fn normalized(self) -> (f64, f64) {
        (
            f64::from(self.p) / f64::from(self.s),
            f64::from(self.r) / f64::from(self.s),
        )
    }

    /// Element counts `[∈R, ∈S, ∈P]` (indexed by [`Proc::idx`]) for an
    /// `n x n` matrix, computed with largest-remainder rounding so the three
    /// counts always sum to exactly `n²`.
    pub fn areas(self, n: usize) -> [usize; 3] {
        let total_elems = n * n;
        let t = f64::from(self.total());
        // Exact quotas in Proc index order [R, S, P].
        let quota = [
            total_elems as f64 * f64::from(self.r) / t,
            total_elems as f64 * f64::from(self.s) / t,
            total_elems as f64 * f64::from(self.p) / t,
        ];
        let mut floor: [usize; 3] = [
            quota[0].floor() as usize,
            quota[1].floor() as usize,
            quota[2].floor() as usize,
        ];
        let assigned: usize = floor.iter().sum();
        let mut leftover = total_elems - assigned;
        // Distribute the remainder to the largest fractional parts;
        // ties broken toward the faster processor (stable outcome).
        let mut order: Vec<usize> = (0..3).collect();
        order.sort_by(|&a, &b| {
            let fa = quota[a] - quota[a].floor();
            let fb = quota[b] - quota[b].floor();
            fb.total_cmp(&fa)
        });
        for k in order {
            if leftover == 0 {
                break;
            }
            floor[k] += 1;
            leftover -= 1;
        }
        floor
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.p, self.r, self.s)
    }
}

impl std::str::FromStr for Ratio {
    type Err = String;

    /// Parse the `Display` form `"P:R:S"` (e.g. `"3:2:1"`), enforcing the
    /// same positivity and `P_r >= R_r >= S_r` ordering as [`Ratio::new`]
    /// but reporting violations as `Err` instead of panicking — suited to
    /// command-line arguments.
    fn from_str(spec: &str) -> Result<Ratio, String> {
        let mut parts = spec.split(':');
        let mut component = |name: &str| -> Result<u32, String> {
            let tok = parts
                .next()
                .ok_or_else(|| format!("ratio {spec:?} is missing the {name} component"))?;
            let value: u32 = tok
                .trim()
                .parse()
                .map_err(|e| format!("bad {name} component {tok:?} in ratio {spec:?}: {e}"))?;
            if value == 0 {
                return Err(format!("ratio {spec:?} has a zero {name} component"));
            }
            Ok(value)
        };
        let (p, r, s) = (component("P")?, component("R")?, component("S")?);
        if parts.next().is_some() {
            return Err(format!("ratio {spec:?} has more than three components"));
        }
        if p < r || r < s {
            return Err(format!(
                "ratio {spec:?} must satisfy P_r >= R_r >= S_r; relabel the processors"
            ));
        }
        Ok(Ratio { p, r, s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_roundtrip() {
        for p in Proc::ALL {
            assert_eq!(Proc::from_q(p.q()), p);
        }
    }

    #[test]
    #[should_panic(expected = "invalid q encoding")]
    fn q_rejects_out_of_range() {
        let _ = Proc::from_q(3);
    }

    #[test]
    fn others_are_disjoint() {
        for p in Proc::ALL {
            let [a, b] = p.others();
            assert_ne!(a, p);
            assert_ne!(b, p);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn areas_sum_to_n_squared() {
        for &(p, r, s) in Ratio::PAPER_RATIOS.iter() {
            let ratio = Ratio::new(p, r, s);
            for n in [1usize, 7, 10, 99, 100, 1000] {
                let areas = ratio.areas(n);
                assert_eq!(areas.iter().sum::<usize>(), n * n, "ratio {ratio} n {n}");
            }
        }
    }

    #[test]
    fn areas_respect_shares() {
        let ratio = Ratio::new(2, 1, 1);
        let areas = ratio.areas(1000);
        // P gets half, R and S a quarter each.
        assert_eq!(areas[Proc::P.idx()], 500_000);
        assert_eq!(areas[Proc::R.idx()], 250_000);
        assert_eq!(areas[Proc::S.idx()], 250_000);
    }

    #[test]
    fn share_sums_to_one() {
        let ratio = Ratio::new(5, 3, 1);
        let total: f64 = Proc::ALL.iter().map(|&p| ratio.share(p)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "P_r >= R_r >= S_r")]
    fn ratio_ordering_enforced() {
        let _ = Ratio::new(1, 2, 1);
    }

    #[test]
    fn normalized_matches_paper_convention() {
        let ratio = Ratio::new(10, 4, 2);
        let (p, r) = ratio.normalized();
        assert!((p - 5.0).abs() < 1e-12);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_ratio_list_is_valid() {
        assert_eq!(Ratio::paper_ratios().len(), 11);
    }

    #[test]
    fn ratio_parses_display_form() {
        for ratio in Ratio::paper_ratios() {
            assert_eq!(ratio.to_string().parse::<Ratio>(), Ok(ratio));
        }
        assert_eq!(" 5 : 3 : 1 ".parse::<Ratio>(), Ok(Ratio::new(5, 3, 1)));
    }

    #[test]
    fn ratio_parse_rejects_malformed_specs() {
        for bad in ["", "3:2", "3:2:1:1", "3:0:1", "1:2:3", "a:2:1", "3:2:-1"] {
            assert!(bad.parse::<Ratio>().is_err(), "{bad:?} should not parse");
        }
    }
}
