//! Constructing partitions: rectangle layouts and the paper's random `q0`.
//!
//! Section VI-A-2 describes the randomized start state: every element begins
//! on the fastest processor `P`; then, for each slower processor `X` in turn,
//! random `(i, j)` coordinates are drawn and the element is assigned to `X`
//! if it still belongs to `P`. [`random_partition`] implements exactly that
//! rejection-sampling scheme, with a documented fallback for the late phase
//! where rejection would stall (when `∈R + ∈S` approaches `N²` the paper's
//! loop becomes a coupon-collector; we switch to sampling from the explicit
//! free list once the acceptance rate drops, which draws from the identical
//! distribution).

use crate::grid::Partition;
use crate::proc_::{Proc, Ratio};
use crate::rect::Rect;
use hetmmm_error::HetmmmError;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// Fluent builder painting rectangles over a `P` background.
///
/// ```
/// use hetmmm_partition::{PartitionBuilder, Proc, Rect};
/// let part = PartitionBuilder::new(8)
///     .rect(Rect::new(0, 3, 0, 3), Proc::R)
///     .rect(Rect::new(4, 7, 4, 7), Proc::S)
///     .build();
/// assert_eq!(part.elems(Proc::R), 16);
/// assert_eq!(part.voc(), 8 * 8 * 2);
/// ```
#[derive(Clone, Debug)]
pub struct PartitionBuilder {
    n: usize,
    layers: Vec<(Rect, Proc)>,
}

impl PartitionBuilder {
    /// Start a builder for an `n x n` matrix, background processor `P`.
    pub fn new(n: usize) -> PartitionBuilder {
        PartitionBuilder {
            n,
            layers: Vec::new(),
        }
    }

    /// Paint `rect` with `proc` (later rectangles overwrite earlier ones).
    ///
    /// Panics if the rectangle is out of bounds; [`PartitionBuilder::try_rect`]
    /// is the non-panicking equivalent.
    pub fn rect(self, rect: Rect, proc: Proc) -> PartitionBuilder {
        match self.try_rect(rect, proc) {
            Ok(builder) => builder,
            // hetmmm-lint: allow(L001) documented panic; try_rect is the fallible twin
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`PartitionBuilder::rect`]: returns
    /// [`HetmmmError::RectOutOfBounds`] instead of panicking.
    pub fn try_rect(mut self, rect: Rect, proc: Proc) -> Result<PartitionBuilder, HetmmmError> {
        if rect.bottom >= self.n || rect.right >= self.n {
            return Err(HetmmmError::RectOutOfBounds {
                rect: rect.to_string(),
                n: self.n,
            });
        }
        self.layers.push((rect, proc));
        Ok(self)
    }

    /// Materialize the partition.
    pub fn build(self) -> Partition {
        let mut part = Partition::new(self.n, Proc::P);
        for (rect, proc) in self.layers {
            part.fill_rect(rect, proc);
        }
        part
    }
}

/// The paper's random start state `q0` (Section VI-A-2).
///
/// Element counts per processor follow `ratio.areas(n)`. Deterministic for a
/// given RNG state, so experiments are reproducible from a seed.
pub fn random_partition<R: Rng>(n: usize, ratio: Ratio, rng: &mut R) -> Partition {
    let mut part = Partition::new(n, Proc::P);
    let areas = ratio.areas(n);
    for x in Proc::PUSHABLE {
        let mut remaining = areas[x.idx()];
        // Phase 1: the paper's rejection sampling. Give up after a budget of
        // consecutive rejections and fall through to the free-list phase.
        let mut misses = 0usize;
        let miss_budget = 8 * n;
        while remaining > 0 && misses < miss_budget {
            let i = rng.random_range(0..n);
            let j = rng.random_range(0..n);
            if part.get(i, j) == Proc::P {
                part.set(i, j, x);
                remaining -= 1;
                misses = 0;
            } else {
                misses += 1;
            }
        }
        if remaining > 0 {
            // Phase 2: uniform sample without replacement from the explicit
            // free list — same distribution, no stall.
            let mut free: Vec<(usize, usize)> = part.cells_of(Proc::P).collect();
            free.shuffle(rng);
            for &(i, j) in free.iter().take(remaining) {
                part.set(i, j, x);
            }
        }
    }
    debug_assert_eq!(part.elems(Proc::R), areas[Proc::R.idx()]);
    debug_assert_eq!(part.elems(Proc::S), areas[Proc::S.idx()]);
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_layers_overwrite() {
        let part = PartitionBuilder::new(6)
            .rect(Rect::new(0, 5, 0, 5), Proc::R)
            .rect(Rect::new(0, 2, 0, 2), Proc::S)
            .build();
        assert_eq!(part.elems(Proc::S), 9);
        assert_eq!(part.elems(Proc::R), 27);
        assert_eq!(part.elems(Proc::P), 0);
        part.assert_invariants();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_rejects_oob() {
        let _ = PartitionBuilder::new(4).rect(Rect::new(0, 4, 0, 3), Proc::R);
    }

    #[test]
    fn builder_try_rect_reports_typed_error() {
        let err = PartitionBuilder::new(4)
            .try_rect(Rect::new(0, 4, 0, 3), Proc::R)
            .unwrap_err();
        match err {
            HetmmmError::RectOutOfBounds { n, .. } => assert_eq!(n, 4),
            other => panic!("unexpected error variant: {other:?}"),
        }
        let ok = PartitionBuilder::new(5).try_rect(Rect::new(0, 4, 0, 3), Proc::R);
        assert!(ok.is_ok());
    }

    #[test]
    fn random_partition_exact_areas() {
        let mut rng = StdRng::seed_from_u64(42);
        for &(p, r, s) in &[(2, 1, 1), (5, 4, 1), (10, 1, 1)] {
            let ratio = Ratio::new(p, r, s);
            let part = random_partition(50, ratio, &mut rng);
            let areas = ratio.areas(50);
            for x in Proc::ALL {
                assert_eq!(part.elems(x), areas[x.idx()], "ratio {ratio} proc {x}");
            }
            part.assert_invariants();
        }
    }

    #[test]
    fn random_partition_deterministic_per_seed() {
        let ratio = Ratio::new(3, 2, 1);
        let a = random_partition(30, ratio, &mut StdRng::seed_from_u64(7));
        let b = random_partition(30, ratio, &mut StdRng::seed_from_u64(7));
        let c = random_partition(30, ratio, &mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c, "distinct seeds should (overwhelmingly) differ");
    }

    #[test]
    fn random_partition_handles_dense_non_p_share() {
        // Ratio 2:2:1 means 80% of elements leave P — exercises the
        // free-list fallback.
        let ratio = Ratio::new(2, 2, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let part = random_partition(40, ratio, &mut rng);
        let areas = ratio.areas(40);
        assert_eq!(part.elems(Proc::P), areas[Proc::P.idx()]);
        part.assert_invariants();
    }

    #[test]
    fn random_partition_n1() {
        let ratio = Ratio::new(3, 1, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let part = random_partition(1, ratio, &mut rng);
        // Single element goes to whichever processor won the rounding.
        assert_eq!(
            part.elems(Proc::P) + part.elems(Proc::R) + part.elems(Proc::S),
            1
        );
    }
}
