//! Coarse rendering of partitions, in the style of the paper's Fig. 7.
//!
//! Fig. 7 shows DFA snapshots at 1/100th granularity: every rendered cell is
//! a `100 x 100` block of matrix elements colored by the processor owning
//! the *majority* of elements in the block. [`render_ascii`] reproduces that
//! with letters (`P`, `R`, `S`), and [`render_pgm`] writes a portable
//! graymap for external viewing.

use crate::grid::Partition;
use crate::proc_::Proc;

/// Majority owner of the block of cells `[i0, i1) x [j0, j1)`.
fn majority_owner(part: &Partition, i0: usize, i1: usize, j0: usize, j1: usize) -> Proc {
    let mut counts = [0usize; 3];
    for i in i0..i1 {
        for j in j0..j1 {
            counts[part.get(i, j).idx()] += 1;
        }
    }
    let mut best = 0;
    for k in 1..3 {
        if counts[k] > counts[best] {
            best = k;
        }
    }
    Proc::from_q(best as u8)
}

/// Render the partition as `blocks x blocks` characters, one per
/// majority-owner block (Fig. 7 uses `blocks = 10` for `N = 1000`, i.e.
/// 1/100th granularity).
///
/// `blocks` is clamped to `n`, so small matrices render at full resolution.
pub fn render_ascii(part: &Partition, blocks: usize) -> String {
    let n = part.n();
    let blocks = blocks.clamp(1, n);
    let mut out = String::with_capacity(blocks * (blocks + 1));
    for bi in 0..blocks {
        let i0 = bi * n / blocks;
        let i1 = ((bi + 1) * n / blocks).max(i0 + 1);
        for bj in 0..blocks {
            let j0 = bj * n / blocks;
            let j1 = ((bj + 1) * n / blocks).max(j0 + 1);
            out.push(majority_owner(part, i0, i1, j0, j1).letter());
        }
        out.push('\n');
    }
    out
}

/// Render as an ASCII PGM image (P2), one pixel per matrix element:
/// `P` → white (255), `R` → mid gray (128), `S` → black (0) — matching the
/// paper's white/gray/black convention.
pub fn render_pgm(part: &Partition) -> String {
    let n = part.n();
    let mut out = String::with_capacity(n * n * 4 + 32);
    out.push_str(&format!("P2\n{n} {n}\n255\n"));
    for i in 0..n {
        for j in 0..n {
            let v = match part.get(i, j) {
                Proc::P => 255,
                Proc::R => 128,
                Proc::S => 0,
            };
            out.push_str(&format!("{v} "));
        }
        out.push('\n');
    }
    out
}

/// Downsample to a `blocks x blocks` partition of majority owners — the
/// granularity at which the paper's figures (and, evidently, its shape
/// grouping) view a partition. Used by the coarse archetype classifier.
pub fn downsample(part: &Partition, blocks: usize) -> Partition {
    let n = part.n();
    let blocks = blocks.clamp(1, n);
    Partition::from_fn(blocks, |bi, bj| {
        let i0 = bi * n / blocks;
        let i1 = ((bi + 1) * n / blocks).max(i0 + 1);
        let j0 = bj * n / blocks;
        let j1 = ((bj + 1) * n / blocks).max(j0 + 1);
        majority_owner(part, i0, i1, j0, j1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    #[test]
    fn full_resolution_render() {
        let mut part = Partition::new(3, Proc::P);
        part.set(0, 0, Proc::R);
        part.set(2, 2, Proc::S);
        let s = render_ascii(&part, 3);
        assert_eq!(s, "RPP\nPPP\nPPS\n");
    }

    #[test]
    fn downsampled_render_majority() {
        // 4x4 with R filling the top-left 2x2 quadrant exactly.
        let mut part = Partition::new(4, Proc::P);
        part.fill_rect(Rect::new(0, 1, 0, 1), Proc::R);
        let s = render_ascii(&part, 2);
        assert_eq!(s, "RP\nPP\n");
    }

    #[test]
    fn blocks_clamped_to_n() {
        let part = Partition::new(2, Proc::P);
        let s = render_ascii(&part, 100);
        assert_eq!(s, "PP\nPP\n");
    }

    #[test]
    fn pgm_header_and_size() {
        let part = Partition::new(2, Proc::S);
        let s = render_pgm(&part);
        assert!(s.starts_with("P2\n2 2\n255\n"));
        let pixels: Vec<&str> = s
            .lines()
            .skip(3)
            .flat_map(|l| l.split_whitespace())
            .collect();
        assert_eq!(pixels.len(), 4);
        assert!(pixels.iter().all(|&p| p == "0"));
    }
}
