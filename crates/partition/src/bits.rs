//! Bit-plane primitives shared by the 3-processor [`crate::Partition`] and
//! `hetmmm-nproc`'s `NPartition`.
//!
//! A *plane line* is the `u64`-word mask of one row (or column) of one
//! processor's bit-plane: bit `j % 64` of word `j / 64` is set iff the
//! processor owns element `j` of the line. The invariant every plane
//! maintains is that the unused high bits of the last (*tail*) word are
//! zero, so popcounts and word-wise sweeps never need a trailing mask.

/// One plane line with the first `n` bits set (tail word masked).
pub fn full_line(n: usize) -> Vec<u64> {
    let words = n.div_ceil(64);
    let mut v = vec![!0u64; words];
    let tail = n % 64;
    if tail != 0 {
        v[words - 1] = (1u64 << tail) - 1;
    }
    v
}

/// First set bit at index `>= from` in a line-occupancy mask, plus the
/// number of words examined (for `grid.shrink.word_scans`). The caller
/// guarantees a set bit exists in range.
#[inline]
pub fn next_occupied(mask: &[u64], from: usize) -> (usize, u64) {
    let mut w = from / 64;
    let mut m = mask[w] & (!0u64 << (from % 64));
    let mut scanned = 1u64;
    while m == 0 {
        w += 1;
        m = mask[w];
        scanned += 1;
    }
    (w * 64 + m.trailing_zeros() as usize, scanned)
}

/// Last set bit at index `<= from`, plus words examined. The caller
/// guarantees a set bit exists in range.
#[inline]
pub fn prev_occupied(mask: &[u64], from: usize) -> (usize, u64) {
    let mut w = from / 64;
    let keep = 63 - (from % 64);
    let mut m = (mask[w] << keep) >> keep;
    let mut scanned = 1u64;
    while m == 0 {
        w -= 1;
        m = mask[w];
        scanned += 1;
    }
    (w * 64 + 63 - m.leading_zeros() as usize, scanned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_line_masks_tail() {
        assert_eq!(full_line(64), vec![!0u64]);
        assert_eq!(full_line(65), vec![!0u64, 1]);
        assert_eq!(full_line(3), vec![0b111]);
    }

    #[test]
    fn occupied_scans_find_boundary_bits() {
        let mut mask = vec![0u64; 3];
        mask[0] |= 1 << 5;
        mask[2] |= 1 << 9;
        assert_eq!(next_occupied(&mask, 0), (5, 1));
        assert_eq!(next_occupied(&mask, 6), (137, 3));
        assert_eq!(prev_occupied(&mask, 137), (137, 1));
        assert_eq!(prev_occupied(&mask, 136), (5, 3));
    }
}
