//! # hetmmm-partition
//!
//! Core data structures for representing a data partition of an `N x N`
//! matrix among three heterogeneous processors, following the formalism of
//! DeFlumere & Lastovetsky, *"Searching for the Optimal Data Partitioning
//! Shape for Parallel Matrix Matrix Multiplication on 3 Heterogeneous
//! Processors"* (IPDPS Workshops / HCW 2014).
//!
//! The paper models a partition as a function `q(i, j) -> {0, 1, 2}` mapping
//! each matrix element to one of the processors `R`, `S`, `P` (Section IV).
//! The central quantity is the *volume of communication* (Eq. 1):
//!
//! ```text
//! VoC = sum_i N * (c_i - 1) + sum_j N * (c_j - 1)
//! ```
//!
//! where `c_i` (`c_j`) is the number of processors owning elements in row `i`
//! (column `j`). [`Partition`] maintains all the per-row/per-column occupancy
//! counts **incrementally**, so a single element reassignment and the
//! resulting VoC delta are `O(1)`. This is what makes the Push search engine
//! (crate `hetmmm-push`) able to run thousands of multi-thousand-step DFA
//! walks per second.
//!
//! Modules:
//! - [`proc_`]: the processor enum and speed-ratio arithmetic,
//! - [`rect`]: inclusive integer rectangles (enclosing rectangles, Fig. 4),
//! - [`grid`]: the [`Partition`] grid itself,
//! - [`metrics`]: extracted communication metrics consumed by the cost models,
//! - [`builder`]: constructing partitions from rectangle layouts and the
//!   paper's randomized `q0` generator (Section VI-A-2),
//! - [`render`]: coarse-grained ASCII / PGM rendering (Fig. 7 style).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod builder;
pub mod grid;
pub mod metrics;
pub mod proc_;
pub mod rect;
pub mod render;
pub mod sym;

pub use builder::{random_partition, PartitionBuilder};
pub use grid::Partition;
pub use metrics::{local_updates, pairwise_volumes, CommMetrics, ProcMetrics};
pub use proc_::{Proc, Ratio};
pub use rect::Rect;
pub use render::{downsample, render_ascii, render_pgm};
pub use sym::{canonical_image, dihedral_images, mirror_h, mirror_v, rotate_cw, transpose};
