//! Communication metrics extracted from a [`Partition`].
//!
//! The five performance models (crate `hetmmm-cost`) are functions of a small
//! set of per-partition quantities defined in Sections II and IV-B of the
//! paper:
//!
//! - the total serial communication volume (Eq. 1 / Eq. 3),
//! - per-processor send volumes `d_X = N·i_X + N·j_X − ∈X` (Eq. 6),
//! - per-processor element counts `∈X` (computation volume),
//! - per-processor *locally computable* update counts (the `o_X` overlap
//!   terms of the SCO/PCO models, Eqs. 7–8).
//!
//! [`CommMetrics::from_partition`] gathers them all in one pass so the cost
//! models never need the grid itself.

use crate::grid::Partition;
use crate::proc_::Proc;
use serde::{Deserialize, Serialize};

/// Per-processor communication/computation quantities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcMetrics {
    /// `i_X`: number of rows containing elements of this processor.
    pub rows_occupied: usize,
    /// `j_X`: number of columns containing elements of this processor.
    pub cols_occupied: usize,
    /// `∈X`: number of elements assigned to this processor.
    pub elems: usize,
    /// Number of scalar updates `C[i,j] += A[i,k] * B[k,j]` for which this
    /// processor owns all three operands — the work available for bulk
    /// overlap (`o_X` numerator in Eqs. 7–8).
    pub local_updates: u64,
}

impl ProcMetrics {
    /// `d_X` in *elements*: `N·i_X + N·j_X − ∈X` (Eq. 6). The time to send
    /// all data owned by the processor that others need, under the
    /// fully-connected topology.
    pub fn send_elems(&self, n: usize) -> u64 {
        (n * self.rows_occupied + n * self.cols_occupied) as u64 - self.elems as u64
    }

    /// Number of scalar updates that *require* communicated operands:
    /// `N·∈X − local_updates` (each of the `∈X` C-elements receives `N`
    /// updates in the kij algorithm).
    pub fn remote_updates(&self, n: usize) -> u64 {
        n as u64 * self.elems as u64 - self.local_updates
    }
}

/// All quantities the cost models need, extracted from one partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommMetrics {
    /// Matrix dimension `N`.
    pub n: usize,
    /// Per-processor metrics, indexed by [`Proc::idx`] (`[R, S, P]`).
    pub per_proc: [ProcMetrics; 3],
    /// Eq. 1 total volume of communication, in elements.
    pub voc: u64,
}

impl CommMetrics {
    /// Extract the metrics from a partition.
    ///
    /// Everything except `local_updates` is `O(N)`; `local_updates` uses a
    /// bitset inner-product sweep costing `O(N³ / 64)` — fast enough for the
    /// `N ≤ 2000` grids the search and tests use. Callers that only need
    /// communication quantities can use
    /// [`CommMetrics::from_partition_comm_only`].
    pub fn from_partition(part: &Partition) -> CommMetrics {
        let mut metrics = Self::from_partition_comm_only(part);
        let local = local_updates(part);
        for p in Proc::ALL {
            metrics.per_proc[p.idx()].local_updates = local[p.idx()];
        }
        metrics
    }

    /// Extract only the communication quantities (`local_updates` left 0).
    pub fn from_partition_comm_only(part: &Partition) -> CommMetrics {
        let per_proc = Proc::ALL.map(|p| ProcMetrics {
            rows_occupied: part.rows_occupied(p),
            cols_occupied: part.cols_occupied(p),
            elems: part.elems(p),
            local_updates: 0,
        });
        CommMetrics {
            n: part.n(),
            per_proc,
            voc: part.voc(),
        }
    }

    /// Metrics of one processor.
    #[inline]
    pub fn proc(&self, p: Proc) -> &ProcMetrics {
        &self.per_proc[p.idx()]
    }
}

/// Pairwise communication volumes `vol[X][Y]`: the number of matrix elements
/// owner `X` must send to processor `Y` under the kij algorithm.
///
/// Element `(i, j)` (present in both A and B, identically partitioned) goes
/// to `Y ≠ X` once as an A-element when `Y` owns any element of row `i`, and
/// once as a B-element when `Y` owns any element of column `j`. Summing over
/// all elements and receivers recovers exactly the Eq. 1 VoC:
/// `Σ_{X≠Y} vol[X][Y] = VoC`.
pub fn pairwise_volumes(part: &Partition) -> [[u64; 3]; 3] {
    let n = part.n();
    let mut vol = [[0u64; 3]; 3];
    for x in Proc::ALL {
        for y in Proc::ALL {
            if x == y {
                continue;
            }
            let mut total = 0u64;
            for i in 0..n {
                if part.row_has(y, i) {
                    total += u64::from(part.row_count(x, i));
                }
            }
            for j in 0..n {
                if part.col_has(y, j) {
                    total += u64::from(part.col_count(x, j));
                }
            }
            vol[x.idx()][y.idx()] = total;
        }
    }
    vol
}

/// Count, for each processor `X`, the scalar updates `(i, j, k)` with
/// `owner(i,j) = owner(i,k) = owner(k,j) = X`.
///
/// Implementation: one `N`-bit row bitset per matrix row per processor; for
/// each pivot `k`, the contribution is `Σ_{i ∈ I_k} |rowbits[i] ∩ J_k|`
/// where `I_k` is the X-owned column `k` and `J_k` the X-owned row `k`.
pub fn local_updates(part: &Partition) -> [u64; 3] {
    let n = part.n();
    let words = n.div_ceil(64);
    // rowbits[p][i * words ..][..words]: bitset of columns of row i owned by p.
    let mut rowbits = vec![vec![0u64; n * words]; 3];
    for i in 0..n {
        for j in 0..n {
            let p = part.get(i, j).idx();
            rowbits[p][i * words + j / 64] |= 1u64 << (j % 64);
        }
    }
    let mut totals = [0u64; 3];
    let mut jk = vec![0u64; words];
    for p in 0..3 {
        let proc = Proc::from_q(p as u8);
        let bits = &rowbits[p];
        for k in 0..n {
            // J_k: columns of row k owned by proc.
            jk.copy_from_slice(&bits[k * words..(k + 1) * words]);
            if jk.iter().all(|&w| w == 0) {
                continue;
            }
            // I_k: rows i with (i, k) owned by proc.
            for i in 0..n {
                if part.get(i, k) == proc {
                    let row = &bits[i * words..(i + 1) * words];
                    let mut acc = 0u32;
                    for (a, b) in row.iter().zip(jk.iter()) {
                        acc += (a & b).count_ones();
                    }
                    totals[p] += u64::from(acc);
                }
            }
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    /// Brute-force `O(N³)` reference for `local_updates`.
    fn local_updates_naive(part: &Partition) -> [u64; 3] {
        let n = part.n();
        let mut totals = [0u64; 3];
        for i in 0..n {
            for j in 0..n {
                let owner = part.get(i, j);
                for k in 0..n {
                    if part.get(i, k) == owner && part.get(k, j) == owner {
                        totals[owner.idx()] += 1;
                    }
                }
            }
        }
        totals
    }

    #[test]
    fn uniform_partition_is_fully_local() {
        let part = Partition::new(6, Proc::P);
        let m = CommMetrics::from_partition(&part);
        assert_eq!(m.voc, 0);
        assert_eq!(m.proc(Proc::P).local_updates, 6 * 6 * 6);
        assert_eq!(m.proc(Proc::P).remote_updates(6), 0);
        assert_eq!(m.proc(Proc::R).elems, 0);
    }

    #[test]
    fn bitset_matches_naive_on_strips() {
        let part = Partition::from_fn(9, |i, _| {
            if i < 3 {
                Proc::P
            } else if i < 6 {
                Proc::R
            } else {
                Proc::S
            }
        });
        assert_eq!(local_updates(&part), local_updates_naive(&part));
    }

    #[test]
    fn bitset_matches_naive_on_square_corner() {
        let mut part = Partition::new(12, Proc::P);
        part.fill_rect(Rect::new(0, 3, 0, 3), Proc::R);
        part.fill_rect(Rect::new(8, 11, 8, 11), Proc::S);
        assert_eq!(local_updates(&part), local_updates_naive(&part));
    }

    #[test]
    fn bitset_matches_naive_on_scattered() {
        // Deterministic pseudo-random scatter.
        let part = Partition::from_fn(17, |i, j| match (i * 31 + j * 17) % 5 {
            0 | 1 => Proc::P,
            2 => Proc::R,
            _ => Proc::S,
        });
        assert_eq!(local_updates(&part), local_updates_naive(&part));
    }

    #[test]
    fn send_elems_matches_eq6() {
        // R owns a 2x3 rectangle in a 6x6 matrix:
        // d_R = N*i_R + N*j_R - |R| = 6*2 + 6*3 - 6 = 24.
        let mut part = Partition::new(6, Proc::P);
        part.fill_rect(Rect::new(1, 2, 0, 2), Proc::R);
        let m = CommMetrics::from_partition_comm_only(&part);
        assert_eq!(m.proc(Proc::R).send_elems(6), 24);
        // P occupies every row and column: d_P = 6*6 + 6*6 - 30 = 42.
        assert_eq!(m.proc(Proc::P).send_elems(6), 42);
    }

    #[test]
    fn remote_plus_local_equals_total_updates() {
        let part = Partition::from_fn(10, |i, j| {
            if i < 5 && j < 5 {
                Proc::R
            } else if i >= 5 && j >= 5 {
                Proc::S
            } else {
                Proc::P
            }
        });
        let m = CommMetrics::from_partition(&part);
        for p in Proc::ALL {
            let pm = m.proc(p);
            assert_eq!(
                pm.local_updates + pm.remote_updates(10),
                10 * pm.elems as u64
            );
        }
    }

    #[test]
    fn pairwise_volumes_sum_to_voc() {
        let part = Partition::from_fn(10, |i, j| {
            if i < 5 && j < 5 {
                Proc::R
            } else if i >= 5 && j >= 5 {
                Proc::S
            } else {
                Proc::P
            }
        });
        let vol = pairwise_volumes(&part);
        let total: u64 = vol.iter().flatten().sum();
        assert_eq!(total, part.voc());
        for x in Proc::ALL {
            assert_eq!(vol[x.idx()][x.idx()], 0);
        }
    }

    #[test]
    fn pairwise_volumes_strips() {
        // Three horizontal strips: every column has all three processors, so
        // every element is sent to both others as a B-element; no A-element
        // traffic (each row has one owner).
        let n = 9;
        let part = Partition::from_fn(n, |i, _| {
            if i < 3 {
                Proc::P
            } else if i < 6 {
                Proc::R
            } else {
                Proc::S
            }
        });
        let vol = pairwise_volumes(&part);
        for x in Proc::ALL {
            for y in Proc::ALL {
                if x != y {
                    assert_eq!(vol[x.idx()][y.idx()], 27, "{x}->{y}");
                }
            }
        }
    }
}
