//! Inclusive integer rectangles.
//!
//! The Push operation is defined in terms of each processor's *enclosing
//! rectangle* — "an imaginary rectangle drawn around the elements assigned to
//! a given processor, which is strictly large enough to encompass all such
//! elements" (Section II, Fig. 4). The paper names the four edges of
//! processor `X`'s enclosing rectangle `x_top`, `x_right`, `x_bottom`,
//! `x_left`; [`Rect`] mirrors that naming.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive axis-aligned rectangle of matrix cells:
/// rows `top..=bottom`, columns `left..=right`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Rect {
    /// First (smallest) row index.
    pub top: usize,
    /// Last (largest) row index, inclusive.
    pub bottom: usize,
    /// First (smallest) column index.
    pub left: usize,
    /// Last (largest) column index, inclusive.
    pub right: usize,
}

impl Rect {
    /// Construct, checking `top <= bottom` and `left <= right`.
    pub fn new(top: usize, bottom: usize, left: usize, right: usize) -> Rect {
        assert!(top <= bottom, "Rect: top {top} > bottom {bottom}");
        assert!(left <= right, "Rect: left {left} > right {right}");
        Rect {
            top,
            bottom,
            left,
            right,
        }
    }

    /// A rectangle spanning rows `rows` and columns `cols` given as
    /// half-open ranges, e.g. `Rect::from_ranges(0..4, 2..6)`.
    /// Panics if either range is empty.
    pub fn from_ranges(rows: std::ops::Range<usize>, cols: std::ops::Range<usize>) -> Rect {
        assert!(
            !rows.is_empty() && !cols.is_empty(),
            "Rect ranges must be non-empty"
        );
        Rect::new(rows.start, rows.end - 1, cols.start, cols.end - 1)
    }

    /// Number of rows spanned.
    #[inline]
    pub fn height(&self) -> usize {
        self.bottom - self.top + 1
    }

    /// Number of columns spanned.
    #[inline]
    pub fn width(&self) -> usize {
        self.right - self.left + 1
    }

    /// Number of cells contained.
    #[inline]
    pub fn area(&self) -> usize {
        self.height() * self.width()
    }

    /// Perimeter in cell-side units, `2 * (height + width)`. Used by the
    /// canonical-form optimizer (Section IX-B minimizes combined perimeters).
    #[inline]
    pub fn perimeter(&self) -> usize {
        2 * (self.height() + self.width())
    }

    /// Does this rectangle contain cell `(i, j)`?
    #[inline]
    pub fn contains(&self, i: usize, j: usize) -> bool {
        i >= self.top && i <= self.bottom && j >= self.left && j <= self.right
    }

    /// Do two rectangles share at least one cell?
    #[inline]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.top <= other.bottom
            && other.top <= self.bottom
            && self.left <= other.right
            && other.left <= self.right
    }

    /// Is `other` entirely inside `self` (possibly touching the border)?
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.top <= other.top
            && self.bottom >= other.bottom
            && self.left <= other.left
            && self.right >= other.right
    }

    /// Is `other` *strictly* inside `self` (no shared border line)? The
    /// Archetype D "surround" relationship (Section VII-G).
    #[inline]
    pub fn strictly_contains_rect(&self, other: &Rect) -> bool {
        self.contains_rect(other) && self != other
    }

    /// Iterate over all `(row, col)` cells of the rectangle in row-major
    /// order.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let left = self.left;
        let right = self.right;
        (self.top..=self.bottom).flat_map(move |i| (left..=right).map(move |j| (i, j)))
    }

    /// The intersection of two rectangles, or `None` if they are disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect::new(
            self.top.max(other.top),
            self.bottom.min(other.bottom),
            self.left.max(other.left),
            self.right.min(other.right),
        ))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[rows {}..={}, cols {}..={}]",
            self.top, self.bottom, self.left, self.right
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basics() {
        let r = Rect::new(1, 3, 2, 6);
        assert_eq!(r.height(), 3);
        assert_eq!(r.width(), 5);
        assert_eq!(r.area(), 15);
        assert_eq!(r.perimeter(), 16);
    }

    #[test]
    fn from_ranges_matches_new() {
        assert_eq!(Rect::from_ranges(0..4, 2..6), Rect::new(0, 3, 2, 5));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn from_empty_range_panics() {
        let _ = Rect::from_ranges(3..3, 0..1);
    }

    #[test]
    fn contains_cells() {
        let r = Rect::new(1, 2, 1, 2);
        assert!(r.contains(1, 1));
        assert!(r.contains(2, 2));
        assert!(!r.contains(0, 1));
        assert!(!r.contains(1, 3));
    }

    #[test]
    fn overlap_is_symmetric_and_correct() {
        let a = Rect::new(0, 4, 0, 4);
        let b = Rect::new(4, 8, 4, 8); // shares corner cell (4,4)
        let c = Rect::new(5, 8, 5, 8);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0, 9, 0, 9);
        let inner = Rect::new(2, 5, 3, 7);
        assert!(outer.contains_rect(&inner));
        assert!(outer.strictly_contains_rect(&inner));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.strictly_contains_rect(&outer));
        assert!(!inner.contains_rect(&outer));
    }

    #[test]
    fn cells_iterator_covers_area() {
        let r = Rect::new(2, 3, 5, 7);
        let cells: Vec<_> = r.cells().collect();
        assert_eq!(cells.len(), r.area());
        assert_eq!(cells[0], (2, 5));
        assert_eq!(*cells.last().unwrap(), (3, 7));
    }

    #[test]
    fn intersection() {
        let a = Rect::new(0, 5, 0, 5);
        let b = Rect::new(3, 8, 4, 9);
        assert_eq!(a.intersect(&b), Some(Rect::new(3, 5, 4, 5)));
        let c = Rect::new(6, 8, 6, 9);
        assert_eq!(a.intersect(&c), None);
    }
}
