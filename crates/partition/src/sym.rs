//! Symmetry operations on partitions.
//!
//! The Eq. 1 volume of communication is defined row/column-symmetrically,
//! so it is invariant under the dihedral symmetries of the square —
//! transposition, horizontal/vertical mirroring, and quarter rotations.
//! These operations normalize shapes ("a partition falls under a type if
//! it can be rotated to meet the criteria", Section IX-A) and provide a
//! sharp oracle for property tests: every VoC-relevant metric must be
//! preserved exactly.

use crate::grid::Partition;

/// Transpose: `(i, j) → (j, i)`.
pub fn transpose(part: &Partition) -> Partition {
    let n = part.n();
    Partition::from_fn(n, |i, j| part.get(j, i))
}

/// Mirror horizontally: `(i, j) → (i, n−1−j)`.
pub fn mirror_h(part: &Partition) -> Partition {
    let n = part.n();
    Partition::from_fn(n, |i, j| part.get(i, n - 1 - j))
}

/// Mirror vertically: `(i, j) → (n−1−i, j)`.
pub fn mirror_v(part: &Partition) -> Partition {
    let n = part.n();
    Partition::from_fn(n, |i, j| part.get(n - 1 - i, j))
}

/// Rotate a quarter turn clockwise: row `i` becomes column `n−1−i`.
pub fn rotate_cw(part: &Partition) -> Partition {
    let n = part.n();
    Partition::from_fn(n, |i, j| part.get(n - 1 - j, i))
}

/// All eight dihedral images of a partition (identity included).
pub fn dihedral_images(part: &Partition) -> Vec<Partition> {
    let r1 = rotate_cw(part);
    let r2 = rotate_cw(&r1);
    let r3 = rotate_cw(&r2);
    let m = mirror_h(part);
    let mr1 = rotate_cw(&m);
    let mr2 = rotate_cw(&mr1);
    let mr3 = rotate_cw(&mr2);
    vec![part.clone(), r1, r2, r3, m, mr1, mr2, mr3]
}

/// The lexicographically smallest dihedral image (by state hash first,
/// then cells) — a canonical representative for duplicate detection among
/// rotated/mirrored shapes.
pub fn canonical_image(part: &Partition) -> Partition {
    dihedral_images(part)
        .into_iter()
        .min_by_key(|p| {
            let cells: Vec<u8> = (0..p.n())
                .flat_map(|i| (0..p.n()).map(move |j| (i, j)))
                .map(|(i, j)| p.get(i, j).q())
                .collect();
            cells
        })
        .unwrap_or_else(|| part.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::random_partition;
    use crate::proc_::{Proc, Ratio};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(seed: u64) -> Partition {
        let mut rng = StdRng::seed_from_u64(seed);
        random_partition(17, Ratio::new(3, 2, 1), &mut rng)
    }

    #[test]
    fn voc_invariant_under_all_symmetries() {
        let part = sample(1);
        for image in dihedral_images(&part) {
            assert_eq!(image.voc(), part.voc());
            assert_eq!(image.voc_units(), part.voc_units());
            for p in Proc::ALL {
                assert_eq!(image.elems(p), part.elems(p));
            }
            image.assert_invariants();
        }
    }

    #[test]
    fn four_rotations_are_identity() {
        let part = sample(2);
        let back = rotate_cw(&rotate_cw(&rotate_cw(&rotate_cw(&part))));
        assert_eq!(back, part);
    }

    #[test]
    fn double_mirror_is_identity() {
        let part = sample(3);
        assert_eq!(mirror_h(&mirror_h(&part)), part);
        assert_eq!(mirror_v(&mirror_v(&part)), part);
        assert_eq!(transpose(&transpose(&part)), part);
    }

    #[test]
    fn transpose_swaps_row_col_counts() {
        let part = sample(4);
        let t = transpose(&part);
        for p in Proc::ALL {
            for i in 0..part.n() {
                assert_eq!(part.row_count(p, i), t.col_count(p, i));
                assert_eq!(part.col_count(p, i), t.row_count(p, i));
            }
        }
    }

    #[test]
    fn canonical_image_is_symmetry_invariant() {
        let part = sample(5);
        let canon = canonical_image(&part);
        for image in dihedral_images(&part) {
            assert_eq!(canonical_image(&image), canon);
        }
    }

    #[test]
    fn enclosing_rect_maps_correctly_under_rotation() {
        let part = sample(6);
        let rot = rotate_cw(&part);
        let n = part.n();
        for p in Proc::ALL {
            let a = part.enclosing_rect(p).unwrap();
            let b = rot.enclosing_rect(p).unwrap();
            // Row i of the original becomes column n-1-i: heights and
            // widths swap.
            assert_eq!(a.height(), b.width());
            assert_eq!(a.width(), b.height());
            assert_eq!(b.right, n - 1 - a.top);
            assert_eq!(b.top, a.left);
        }
    }
}
