//! Event sinks: where emitted records go.
//!
//! A [`Sink`] is installed into the facade's registry
//! ([`crate::install_sink`]) and receives every [`EventRecord`] emitted
//! anywhere in the process. Three implementations cover the workspace's
//! needs: [`FmtSink`] for humans, [`JsonlSink`] for machines, and
//! [`CollectSink`] for tests.

use crate::event::{EventKind, EventRecord};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// Receives every emitted event. Implementations must be cheap and must
/// not emit events themselves (no re-entrancy guard is provided).
pub trait Sink: Send + Sync {
    /// Handle one record. Called from whichever thread emitted it.
    fn on_event(&self, record: &EventRecord);

    /// Flush buffered output (called by [`crate::flush_sinks`] and before
    /// manifest writes).
    fn flush(&self) {}
}

/// Opaque handle returned by [`crate::install_sink`]; pass it to
/// [`crate::uninstall_sink`] to remove the sink again.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SinkId(pub(crate) u64);

/// Human-readable sink: renders each event as one plain-text line.
///
/// [`EventKind::Message`] events print their text verbatim (this is how
/// routed library `println!`s keep their exact output); everything else
/// prints as a compact `name { fields }` debug line — or is skipped
/// entirely in [messages-only](FmtSink::messages_only) mode, which bench
/// binaries use so their tables stay readable while a high-volume event
/// stream flows to a JSONL sink alongside.
pub struct FmtSink {
    out: Mutex<Box<dyn Write + Send>>,
    messages_only: bool,
}

impl FmtSink {
    /// Render to standard output.
    pub fn stdout() -> FmtSink {
        FmtSink::to_writer(Box::new(io::stdout()))
    }

    /// Render to standard error.
    pub fn stderr() -> FmtSink {
        FmtSink::to_writer(Box::new(io::stderr()))
    }

    /// Render to an arbitrary writer.
    pub fn to_writer(out: Box<dyn Write + Send>) -> FmtSink {
        FmtSink {
            out: Mutex::new(out),
            messages_only: false,
        }
    }

    /// Print only [`EventKind::Message`] text (verbatim); drop all other
    /// event kinds instead of rendering debug lines.
    pub fn messages_only(mut self) -> FmtSink {
        self.messages_only = true;
        self
    }
}

impl Sink for FmtSink {
    fn on_event(&self, record: &EventRecord) {
        if self.messages_only && !matches!(record.event, EventKind::Message { .. }) {
            return;
        }
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        // Output errors (e.g. closed pipe) are deliberately swallowed:
        // observability must never take down the observed program.
        let _ = match &record.event {
            EventKind::Message { text, .. } => writeln!(out, "{text}"),
            EventKind::SpanStart { name, arg, .. } => writeln!(out, "-> {name} [{arg}]"),
            EventKind::SpanEnd { name, nanos, .. } => writeln!(out, "<- {name} ({nanos} ns)"),
            other => writeln!(out, "{other:?}"),
        };
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|p| p.into_inner()).flush();
    }
}

/// Machine-readable sink: one schema-versioned JSON record per line.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Create (truncating) a JSONL file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::to_writer(Box::new(io::BufWriter::new(file))))
    }

    /// Write JSONL to an arbitrary writer (tests pass a [`SharedBuf`]).
    pub fn to_writer(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
        }
    }
}

impl Sink for JsonlSink {
    fn on_event(&self, record: &EventRecord) {
        if let Ok(json) = serde_json::to_string(record) {
            let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
            let _ = writeln!(out, "{json}");
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|p| p.into_inner()).flush();
    }
}

/// Counting sink: accepts every record, stores nothing.
///
/// The A/B arm of the `obs_overhead` perf-gate workload: installing a
/// `NullSink` forces the facade down its *enabled* path (argument
/// construction, clock reads, registry walk) while excluding sink I/O, so
/// the measured on/off wall ratio isolates the cost of instrumentation
/// itself rather than of a particular backend.
#[derive(Default)]
pub struct NullSink {
    seen: std::sync::atomic::AtomicU64,
}

impl NullSink {
    /// A fresh counter-only sink (wrap in `Arc` to install).
    pub fn new() -> Arc<NullSink> {
        Arc::new(NullSink::default())
    }

    /// Records delivered so far.
    pub fn seen(&self) -> u64 {
        self.seen.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Sink for NullSink {
    fn on_event(&self, _record: &EventRecord) {
        self.seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Test sink: collects every record in memory.
#[derive(Default)]
pub struct CollectSink {
    events: Mutex<Vec<EventRecord>>,
}

impl CollectSink {
    /// A fresh, empty collector (wrap in `Arc` to install).
    pub fn new() -> Arc<CollectSink> {
        Arc::new(CollectSink::default())
    }

    /// Drain and return everything collected so far.
    pub fn take(&self) -> Vec<EventRecord> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for CollectSink {
    fn on_event(&self, record: &EventRecord) {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(record.clone());
    }
}

/// A cloneable in-memory byte buffer implementing `Write`; lets tests hand
/// a [`JsonlSink`] a writer they can still read afterwards.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// A fresh, empty buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// Copy out everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SCHEMA_VERSION;

    fn record(text: &str) -> EventRecord {
        EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: 1,
            event: EventKind::Message {
                target: "test".into(),
                text: text.into(),
            },
        }
    }

    #[test]
    fn fmt_sink_prints_message_text_verbatim() {
        let buf = SharedBuf::new();
        let sink = FmtSink::to_writer(Box::new(buf.clone()));
        sink.on_event(&record("hello world"));
        sink.flush();
        assert_eq!(String::from_utf8(buf.contents()).unwrap(), "hello world\n");
    }

    #[test]
    fn jsonl_sink_emits_parseable_lines() {
        let buf = SharedBuf::new();
        let sink = JsonlSink::to_writer(Box::new(buf.clone()));
        sink.on_event(&record("a"));
        sink.on_event(&record("b"));
        sink.flush();
        let text = String::from_utf8(buf.contents()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: EventRecord = serde_json::from_str(line).unwrap();
            assert_eq!(back.v, SCHEMA_VERSION);
        }
    }

    #[test]
    fn null_sink_counts_without_storing() {
        let sink = NullSink::new();
        sink.on_event(&record("a"));
        sink.on_event(&record("b"));
        assert_eq!(sink.seen(), 2);
    }

    #[test]
    fn collect_sink_takes_in_order() {
        let sink = CollectSink::new();
        sink.on_event(&record("1"));
        sink.on_event(&record("2"));
        assert_eq!(sink.len(), 2);
        let taken = sink.take();
        assert!(sink.is_empty());
        match &taken[0].event {
            EventKind::Message { text, .. } => assert_eq!(text, "1"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
