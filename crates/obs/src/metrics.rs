//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! All instruments are lock-free atomics; the registry maps `&'static str`
//! names to shared instrument handles so hot paths can cache the `Arc` and
//! skip the name lookup entirely. Recording is globally gated by an
//! `AtomicBool` ([`MetricsRegistry::is_enabled`]) so the uninstrumented
//! cost is one relaxed load per call site.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Registry of every metric name the workspace records.
///
/// One module holds the entire metric surface of a run, so dashboards and
/// `obs_report` consumers have a single place to look names up. Rule L011
/// (`hetmmm-lint`) enforces the contract mechanically: every name literal
/// handed to `.counter(..)` / `.gauge(..)` / `.histogram(..)` outside
/// test code must be declared here, and declarations must be unique.
pub mod names {
    /// Per-processor count of C-element updates, indexed by `Proc::idx()`.
    pub const EXEC_UPDATES: [&str; 3] = ["exec.updates.R", "exec.updates.S", "exec.updates.P"];
    /// Per-processor count of matrix elements sent, indexed by `Proc::idx()`.
    pub const EXEC_ELEMS_SENT: [&str; 3] = [
        "exec.elems_sent.R",
        "exec.elems_sent.S",
        "exec.elems_sent.P",
    ];
    /// Total faults the parallel executor detected and survived.
    pub const EXEC_RECOVERIES: &str = "exec.recoveries";
    /// Nanoseconds a worker spent blocked in `recv` during one step.
    pub const EXEC_RECV_WAIT_NANOS: &str = "exec.recv_wait_nanos";
    /// Worker-level receive re-waits (timeouts absorbed without blame).
    pub const EXEC_RECV_RETRIES: &str = "exec.recv_retries";
    /// Supervisor-level attempt retries before any conviction.
    pub const EXEC_ATTEMPT_RETRIES: &str = "exec.attempt_retries";
    /// Nanoseconds spent in supervisor backoff between attempts.
    pub const EXEC_BACKOFF_NANOS: &str = "exec.backoff_nanos";
    /// Step-checkpoint snapshots workers banked with the supervisor.
    pub const EXEC_CHECKPOINTS: &str = "exec.checkpoints";
    /// Pivot steps recovery skipped thanks to checkpointed resume.
    pub const EXEC_RESUMED_STEPS: &str = "exec.resumed_steps";
    /// Pivot steps recovery re-ran past the resume point (worst cell).
    pub const EXEC_REPLAYED_STEPS: &str = "exec.replayed_steps";
    /// Runs that finished in degraded mode (serial fallback).
    pub const EXEC_DEGRADED_RUNS: &str = "exec.degraded_runs";
    /// Fault schedules the chaos harness drove to completion.
    pub const CHAOS_SCHEDULES: &str = "chaos.schedules";
    /// Chaos runs whose faults were absorbed without any conviction.
    pub const CHAOS_ABSORBED: &str = "chaos.absorbed";
    /// Chaos runs that convicted at least one worker and still matched.
    pub const CHAOS_RECOVERED: &str = "chaos.recovered";
    /// Chaos runs that ended in the typed degraded-mode outcome.
    pub const CHAOS_DEGRADED: &str = "chaos.degraded";
    /// Steps the 3-processor push DFA took to reach its final shape.
    pub const DFA_STEPS_TO_CONVERGENCE: &str = "dfa.steps_to_convergence";
    /// Accepted pushes by the 3-processor DFA, indexed
    /// `[push type - 1][direction]` with directions ordered
    /// down, up, left, right.
    pub const DFA_PUSH: [[&str; 4]; 6] = [
        [
            "dfa.push.type1.down",
            "dfa.push.type1.up",
            "dfa.push.type1.left",
            "dfa.push.type1.right",
        ],
        [
            "dfa.push.type2.down",
            "dfa.push.type2.up",
            "dfa.push.type2.left",
            "dfa.push.type2.right",
        ],
        [
            "dfa.push.type3.down",
            "dfa.push.type3.up",
            "dfa.push.type3.left",
            "dfa.push.type3.right",
        ],
        [
            "dfa.push.type4.down",
            "dfa.push.type4.up",
            "dfa.push.type4.left",
            "dfa.push.type4.right",
        ],
        [
            "dfa.push.type5.down",
            "dfa.push.type5.up",
            "dfa.push.type5.left",
            "dfa.push.type5.right",
        ],
        [
            "dfa.push.type6.down",
            "dfa.push.type6.up",
            "dfa.push.type6.left",
            "dfa.push.type6.right",
        ],
    ];
    /// Steps the n-processor column DFA took to reach its final shape.
    pub const NPROC_STEPS: &str = "nproc.steps";
    /// `u64` plane words popcounted by the bit-plane occupancy reads
    /// (`rows_occupied` / `cols_occupied`).
    pub const GRID_POPCOUNT_WORDS: &str = "grid.popcount.words";
    /// Occupied-line mask words examined by the enclosing-rect boundary
    /// shrink sweeps in `Partition::set` / `NPartition::set`.
    pub const GRID_SHRINK_WORD_SCANS: &str = "grid.shrink.word_scans";
    /// Push-feasibility probes actually evaluated (cache misses included,
    /// cache hits not).
    pub const PUSH_PROBES: &str = "push.probe.evals";
    /// Probe verdicts served from a hash-verified [`ProbeCache`] slot
    /// instead of being re-evaluated.
    ///
    /// [`ProbeCache`]: https://docs.rs/hetmmm-push
    pub const PUSH_PROBE_CACHE_HITS: &str = "push.probe.cache_hits";
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// `bounds` are strictly increasing upper bounds; observation `v` lands in
/// the first bucket with `v <= bound`, or in the implicit overflow bucket
/// past the last bound (so there are `bounds.len() + 1` buckets).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Build from explicit bounds (must be strictly increasing, non-empty).
    pub fn new(bounds: Vec<u64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Geometric bounds `start, start*factor, start*factor², …` (`len`
    /// bounds, saturating at `u64::MAX`).
    pub fn exponential(start: u64, factor: u64, len: usize) -> Histogram {
        assert!(start > 0 && factor > 1 && len > 0);
        let mut bounds = Vec::with_capacity(len);
        let mut b = start;
        for _ in 0..len {
            if bounds.last() == Some(&b) {
                break; // saturated
            }
            bounds.push(b);
            b = b.saturating_mul(factor);
        }
        Histogram::new(bounds)
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| v > b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Immutable copy of the current state, tagged with `name`.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Serialized state of one histogram.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registry name.
    pub name: String,
    /// Bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Bucket-interpolated quantile estimate (`0.0 <= q <= 1.0`).
    ///
    /// Finds the bucket containing the `q`-th observation and interpolates
    /// linearly within it, taking the bucket's value range as
    /// `(previous bound, bound]` (0 below the first bound). Returns `None`
    /// when the histogram is empty. Observations in the overflow bucket
    /// have no upper bound, so quantiles landing there are clamped to the
    /// last bound — the estimate is then a lower bound on the true value.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q = 0 maps to the first
        // observation, q = 1 to the last.
        let target = (q * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                let lo = if idx == 0 {
                    0.0
                } else {
                    self.bounds[idx - 1] as f64
                };
                if idx >= self.bounds.len() {
                    // Overflow bucket: unbounded above; clamp to its floor.
                    return Some(lo);
                }
                let hi = self.bounds[idx] as f64;
                let frac = (target - cum as f64) / c as f64;
                return Some(lo + (hi - lo) * frac);
            }
            cum = next;
        }
        // count > 0 guarantees some bucket is non-empty, so we only get
        // here if count disagrees with the bucket sum; fall back to the
        // last bound rather than panicking on a corrupt snapshot.
        self.bounds.last().map(|&b| b as f64)
    }
}

/// Serialized state of a whole registry, embedded in run manifests.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Name → instrument registry with a global recording gate.
///
/// Use [`crate::metrics`] for the process-wide instance. Instruments are
/// created on first touch and live for the life of the process; `reset`
/// zeroes values but keeps identities, so cached `Arc` handles stay valid.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: AtomicBool,
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A fresh registry (recording disabled).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Turn recording on or off. Call sites are expected to check
    /// [`MetricsRegistry::is_enabled`] before doing any per-event work.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is recording on? One relaxed atomic load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Fetch-or-create a counter.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some(c) = self
            .counters
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
        {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .unwrap_or_else(|p| p.into_inner())
                .entry(name)
                .or_default(),
        )
    }

    /// Fetch-or-create a gauge.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some(g) = self
            .gauges
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
        {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .unwrap_or_else(|p| p.into_inner())
                .entry(name)
                .or_default(),
        )
    }

    /// Fetch-or-create a histogram; `make` supplies the instance (and its
    /// bucket bounds) on first touch only.
    pub fn histogram(
        &self,
        name: &'static str,
        make: impl FnOnce() -> Histogram,
    ) -> Arc<Histogram> {
        if let Some(h) = self
            .histograms
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
        {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .unwrap_or_else(|p| p.into_inner())
                .entry(name)
                .or_insert_with(|| Arc::new(make())),
        )
    }

    /// Snapshot every instrument (sorted by name — deterministic).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap_or_else(|p| p.into_inner())
                .iter()
                .map(|(name, c)| (name.to_string(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap_or_else(|p| p.into_inner())
                .iter()
                .map(|(name, g)| (name.to_string(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap_or_else(|p| p.into_inner())
                .iter()
                .map(|(name, h)| h.snapshot(name))
                .collect(),
        }
    }

    /// Zero every instrument, keeping identities (cached handles survive).
    pub fn reset(&self) {
        for c in self
            .counters
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in self
            .gauges
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            g.value.store(0, Ordering::Relaxed);
        }
        for h in self
            .histograms
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .values()
        {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing_lands_on_boundaries_correctly() {
        let h = Histogram::new(vec![10, 100, 1000]);
        h.observe(0); // bucket 0 (<= 10)
        h.observe(10); // bucket 0 (boundary is inclusive)
        h.observe(11); // bucket 1
        h.observe(100); // bucket 1
        h.observe(101); // bucket 2
        h.observe(1000); // bucket 2
        h.observe(1001); // overflow bucket
        h.observe(u64::MAX); // overflow bucket
        let snap = h.snapshot("t");
        assert_eq!(snap.counts, vec![2, 2, 2, 2]);
        assert_eq!(snap.count, 8);
    }

    #[test]
    fn exponential_bounds_saturate_instead_of_overflowing() {
        let h = Histogram::exponential(1, 2, 80);
        let snap = h.snapshot("t");
        assert!(snap.bounds.len() < 80, "must stop at u64::MAX");
        assert!(snap.bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*snap.bounds.last().unwrap(), u64::MAX);
    }

    #[test]
    fn registry_returns_shared_instruments() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("test.shared");
        let b = reg.counter("test.shared");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("test.shared").get(), 4);
    }

    #[test]
    fn reset_keeps_cached_handles_valid() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("test.reset");
        c.add(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(reg.counter("test.reset").get(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("zz").inc();
        reg.counter("aa").add(2);
        reg.gauge("mid").set(-5);
        reg.histogram("h", || Histogram::new(vec![1, 2])).observe(2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "aa");
        assert_eq!(snap.gauges[0].1, -5);
        let back: MetricsSnapshot =
            serde_json::from_str(&serde_json::to_string(&snap).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(vec![5, 5]);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let snap = Histogram::new(vec![10, 100]).snapshot("t");
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.quantile(0.0), None);
        assert_eq!(snap.quantile(1.0), None);
    }

    #[test]
    fn quantile_interpolates_within_a_single_bucket() {
        let h = Histogram::new(vec![10]);
        for _ in 0..4 {
            h.observe(5);
        }
        let snap = h.snapshot("t");
        // All 4 observations in (0, 10]: p50 targets rank 2 of 4 → 5.0,
        // p100 targets rank 4 → 10.0.
        assert_eq!(snap.quantile(0.5), Some(5.0));
        assert_eq!(snap.quantile(1.0), Some(10.0));
        // q = 0 maps to rank 1 → first quarter of the bucket.
        assert_eq!(snap.quantile(0.0), Some(2.5));
    }

    #[test]
    fn quantile_walks_across_buckets() {
        let h = Histogram::new(vec![10, 20, 40]);
        for v in [5, 15, 15, 30] {
            h.observe(v);
        }
        let snap = h.snapshot("t");
        // Rank 2 of 4 lands in the (10, 20] bucket (rank 1 within it, of
        // 2) → 10 + 10 * 1/2 = 15.
        assert_eq!(snap.quantile(0.5), Some(15.0));
        // Rank 4 lands in (20, 40] → 40.
        assert_eq!(snap.quantile(1.0), Some(40.0));
    }

    #[test]
    fn quantile_clamps_in_the_overflow_bucket() {
        let h = Histogram::new(vec![10]);
        h.observe(3);
        h.observe(7);
        h.observe(10_000); // overflow: > last bound
        h.observe(10_000);
        let snap = h.snapshot("t");
        // p99 lands in the unbounded overflow bucket → clamped to the last
        // bound, a lower bound on the true value.
        assert_eq!(snap.quantile(0.99), Some(10.0));
        // p25 targets rank 1 of 4: rank 1 of 2 within (0, 10] → 5.0.
        assert_eq!(snap.quantile(0.25), Some(5.0));
    }

    #[test]
    fn quantile_clamps_q_outside_unit_interval() {
        let h = Histogram::new(vec![100]);
        h.observe(50);
        let snap = h.snapshot("t");
        assert_eq!(snap.quantile(-3.0), snap.quantile(0.0));
        assert_eq!(snap.quantile(7.0), snap.quantile(1.0));
    }
}
