//! Run manifests: one JSONL record per experiment-binary invocation.
//!
//! A [`RunManifest`] captures everything needed to interpret (and re-run)
//! an artifact drop: binary name, CLI arguments, seed, git revision, wall
//! time, and a full metrics snapshot. Bench binaries append one line per
//! run to `results/manifests.jsonl` via their session guard (see
//! `hetmmm_bench::BinSession`).

use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;

/// Schema version of the manifest record (independent of the event schema).
pub const MANIFEST_VERSION: u32 = 1;

/// One experiment run, serialized as one JSONL line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Always [`MANIFEST_VERSION`] for records produced by this build.
    pub v: u32,
    /// Binary name, e.g. `fig5_archetype_census`.
    pub bin: String,
    /// Parsed CLI flags as sorted `(key, value)` pairs.
    pub args: Vec<(String, String)>,
    /// Base seed of the run, when the binary takes one.
    pub seed: Option<u64>,
    /// Short git revision (or `unknown` outside a work tree).
    pub git_rev: String,
    /// Unix epoch milliseconds at session start.
    pub started_unix_ms: u64,
    /// Wall-clock duration measured on the installed [`crate::Clock`].
    pub wall_nanos: u64,
    /// Events emitted through the facade during the session.
    pub events_emitted: u64,
    /// Full metrics snapshot at session end.
    pub metrics: MetricsSnapshot,
}

/// Best-effort short git revision of the working tree.
///
/// Honors `HETMMM_GIT_REV` (useful in CI and containers without `.git`),
/// then asks `git rev-parse --short HEAD`, then falls back to `unknown`.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("HETMMM_GIT_REV") {
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Append one manifest record to a JSONL file (created if absent).
pub fn append_manifest(path: impl AsRef<Path>, manifest: &RunManifest) -> io::Result<()> {
    let json = serde_json::to_string(manifest)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{json}")
}

/// Default cap on `results/manifests.jsonl` lines (see [`manifest_cap`]).
pub const DEFAULT_MANIFEST_CAP: usize = 1024;

/// Manifest-file line cap from `HETMMM_OBS_MANIFEST_CAP`.
///
/// `0` (or an unparsable value) means unlimited; unset means
/// [`DEFAULT_MANIFEST_CAP`]. Bench sessions pass the result to
/// [`append_manifest_capped`] so repeated runs cannot grow the file
/// without bound.
pub fn manifest_cap() -> Option<usize> {
    match std::env::var("HETMMM_OBS_MANIFEST_CAP") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(0) | Err(_) => None,
            Ok(cap) => Some(cap),
        },
        Err(_) => Some(DEFAULT_MANIFEST_CAP),
    }
}

/// Append one manifest record, then trim the file to its newest `cap`
/// lines (`None` = unlimited, plain append).
///
/// Trimming rewrites the whole file; the cap exists to bound artifact
/// growth across many bench invocations, not to make appends cheap, and
/// manifest files are small (one line per *run*).
pub fn append_manifest_capped(
    path: impl AsRef<Path>,
    manifest: &RunManifest,
    cap: Option<usize>,
) -> io::Result<()> {
    let path = path.as_ref();
    append_manifest(path, manifest)?;
    let Some(cap) = cap else { return Ok(()) };
    let text = std::fs::read_to_string(path)?;
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() <= cap {
        return Ok(());
    }
    let keep = &lines[lines.len() - cap..];
    let mut out = keep.join("\n");
    out.push('\n');
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            v: MANIFEST_VERSION,
            bin: "test_bin".into(),
            args: vec![("n".into(), "40".into()), ("runs".into(), "10".into())],
            seed: Some(7),
            git_rev: "abc1234".into(),
            started_unix_ms: 1_700_000_000_000,
            wall_nanos: 123_456_789,
            events_emitted: 42,
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let back: RunManifest = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn append_accumulates_lines() {
        let path =
            std::env::temp_dir().join(format!("hetmmm_manifest_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_manifest(&path, &sample()).unwrap();
        append_manifest(&path, &sample()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let m: RunManifest = serde_json::from_str(line).unwrap();
            assert_eq!(m.v, MANIFEST_VERSION);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn capped_append_keeps_newest_lines() {
        let path = std::env::temp_dir().join(format!(
            "hetmmm_manifest_cap_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        for i in 0..5u64 {
            let mut m = sample();
            m.seed = Some(i);
            append_manifest_capped(&path, &m, Some(3)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let seeds: Vec<u64> = text
            .lines()
            .map(|l| {
                serde_json::from_str::<RunManifest>(l)
                    .unwrap()
                    .seed
                    .unwrap()
            })
            .collect();
        assert_eq!(seeds, vec![2, 3, 4], "newest 3 records survive, in order");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uncapped_append_never_trims() {
        let path = std::env::temp_dir().join(format!(
            "hetmmm_manifest_nocap_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        for _ in 0..4 {
            append_manifest_capped(&path, &sample(), None).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn git_rev_env_override_wins() {
        // Can't set process env safely under parallel tests via std in all
        // cases, so just exercise the fallback path: the function must
        // return *something* non-empty.
        assert!(!git_rev().is_empty());
    }
}
