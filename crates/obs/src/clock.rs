//! The workspace's one monotonic time abstraction.
//!
//! Every component that needs wall time — span durations, receive-wait
//! histograms in the threaded executor, bench-session timings — reads it
//! through the [`Clock`] trait instead of calling `Instant::now()`
//! directly, so tests can substitute a [`FakeClock`] and get bit-for-bit
//! reproducible timestamps.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic nanosecond source.
///
/// Implementations must be monotone non-decreasing per instance; the
/// absolute epoch is unspecified (only differences are meaningful).
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since this clock's (arbitrary) epoch.
    fn now_nanos(&self) -> u64;

    /// Block the calling thread for `d` *on this clock's axis*.
    ///
    /// The production clock really sleeps; [`FakeClock`] advances its
    /// reading instantly instead, so retry/backoff schedules driven
    /// through a clock handle stay deterministic (and fast) in tests.
    fn sleep(&self, d: Duration) {
        // hetmmm-lint: allow(L005) the Clock trait is the sanctioned home of wall-time waiting
        std::thread::sleep(d);
    }
}

/// Shared process-wide origin so every [`MonotonicClock`] instance reports
/// on the same axis.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// The production clock: `Instant`-backed, one shared epoch per process.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        origin().elapsed().as_nanos() as u64
    }
}

/// A manually advanced clock for deterministic tests.
///
/// Starts at zero; [`FakeClock::advance`] and [`FakeClock::set`] move it.
/// Shared through an `Arc`, so a test can hold one handle while the code
/// under test reads time through the facade.
#[derive(Debug, Default)]
pub struct FakeClock {
    nanos: AtomicU64,
}

impl FakeClock {
    /// A fresh clock at t = 0.
    pub fn new() -> FakeClock {
        FakeClock::default()
    }

    /// Move the clock forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Set the absolute reading (must not move backwards in real use;
    /// unchecked because tests may want to).
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    /// Fake sleep: advance the reading by `d` and return immediately.
    fn sleep(&self, d: Duration) {
        self.advance(d.as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock;
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_advances_deterministically() {
        let c = FakeClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_nanos(), 12);
        c.set(3);
        assert_eq!(c.now_nanos(), 3);
    }

    #[test]
    fn fake_sleep_advances_instead_of_blocking() {
        let c = FakeClock::new();
        let wall = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert!(wall.elapsed() < Duration::from_secs(5), "must not block");
        assert_eq!(c.now_nanos(), 3600 * 1_000_000_000);
    }

    #[test]
    fn real_sleep_moves_the_monotonic_clock() {
        let c = MonotonicClock;
        let before = c.now_nanos();
        c.sleep(Duration::from_millis(2));
        assert!(c.now_nanos() - before >= 1_000_000);
    }
}
