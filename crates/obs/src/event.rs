//! The typed event vocabulary and its serialized record format.
//!
//! Every instrumented layer emits [`EventKind`] values through the facade;
//! sinks receive them wrapped in an [`EventRecord`] that carries the schema
//! version and a timestamp from the installed [`crate::Clock`]. The JSONL
//! wire format is one record per line:
//!
//! ```json
//! {"v":1,"ts_nanos":12345,"event":{"DfaPush":{"step":1,"proc":"R",...}}}
//! ```
//!
//! Processor, direction, and termination fields are carried as short
//! strings (the `Display` form of the owning crate's enums) rather than as
//! the enums themselves: the obs crate sits *below* every other workspace
//! crate and cannot name their types without creating a dependency cycle.

use serde::{Deserialize, Serialize};

/// Version stamped on every serialized record. Bump on any breaking change
/// to [`EventKind`] or [`EventRecord`]; `obs_verify` rejects mismatches.
///
/// v2: span events carry the emitting thread's ordinal (`tid`), required by
/// the `hetmmm-report` profiler to reconstruct per-thread call trees from
/// an interleaved multi-thread stream.
///
/// v3: recovery-engine vocabulary — `ExecRetry` (worker-level receive
/// re-waits), `ExecResume` (supervisor attempt retries with backoff and a
/// checkpointed resume step), `ExecCheckpoint` (per-worker step-checkpoint
/// writes), and `ExecDegraded` (graceful serial fallback).
///
/// v4: timeline vocabulary — `ExecSegment` attributes one contiguous slice
/// of a worker's wall time to a phase (`compute` / `send` / `recv-wait` /
/// `checkpoint` / `blocked`), carrying clock-axis start/end so the
/// `hetmmm-report` timeline module can reconstruct per-processor
/// timelines, export Chrome traces, and compute the cross-worker critical
/// path.
pub const SCHEMA_VERSION: u32 = 4;

/// A structured event from one of the instrumented layers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A span opened (`span` is the unique id; `arg` is a span-specific
    /// payload such as the DFA seed or the executor pivot step).
    SpanStart {
        /// Unique span id (process-wide counter).
        span: u64,
        /// Span name, e.g. `dfa.run`.
        name: String,
        /// Span-specific argument (0 when unused).
        arg: u64,
        /// Ordinal of the opening thread ([`crate::thread_ordinal`]) —
        /// span nesting is only meaningful within one thread's sub-stream.
        tid: u64,
    },
    /// The matching span closed.
    SpanEnd {
        /// Id from the corresponding [`EventKind::SpanStart`].
        span: u64,
        /// Span name (repeated for grep-ability).
        name: String,
        /// Duration measured on the installed clock.
        nanos: u64,
        /// Thread ordinal recorded at span *open* time, so start/end pairs
        /// always agree even if a guard is dropped elsewhere.
        tid: u64,
    },
    /// Free-form routed text (the facade replacement for stray
    /// `println!`/`eprintln!` in library code).
    Message {
        /// Dotted origin label, e.g. `bench.table`.
        target: String,
        /// The preformatted line.
        text: String,
    },
    /// A DFA run started.
    DfaRunStart {
        /// Seed of the run (0 for explicit-state runs without one).
        seed: u64,
        /// Matrix dimension `N`.
        n: u64,
        /// Speed ratio rendered as `P:R:S`.
        ratio: String,
        /// Number of `(proc, dir)` entries in the push plan.
        plan_len: u64,
    },
    /// A push was accepted and applied.
    DfaPush {
        /// 1-based count of applied pushes so far.
        step: u64,
        /// Active processor letter.
        proc: String,
        /// Direction arrow.
        dir: String,
        /// Push type 1–6.
        push_type: u8,
        /// Exact ΔVoC of the operation in element units (≤ 0).
        delta_voc: i64,
    },
    /// A plan entry was attempted and no push type applied.
    DfaPushRejected {
        /// Active processor letter.
        proc: String,
        /// Direction arrow.
        dir: String,
    },
    /// A DFA run terminated; the fixed-point classification event.
    DfaRunEnd {
        /// Pushes applied.
        steps: u64,
        /// Termination kind (`FixedPoint`, `NeutralCycle`,
        /// `StepCapExhausted`, `ZeroDeltaCapExhausted`).
        termination: String,
        /// VoC of the start state.
        voc_initial: u64,
        /// VoC of the final state.
        voc_final: u64,
        /// `(proc, dir)` pairs that would still push under the full plan.
        residual_pushes: u64,
        /// Condensed under every direction (Theorem 8.3 test)?
        condensed: bool,
    },
    /// The executor sent a fragment message.
    ExecSend {
        /// Sender letter.
        from: String,
        /// Receiver letter.
        to: String,
        /// Pivot step `k`.
        step: u64,
        /// Elements carried.
        elems: u64,
    },
    /// The executor received a fragment message.
    ExecRecv {
        /// Sender letter.
        from: String,
        /// Receiver letter.
        to: String,
        /// Pivot step `k`.
        step: u64,
        /// Elements carried.
        elems: u64,
        /// Time the receiver blocked waiting for the message.
        wait_nanos: u64,
    },
    /// A worker declared a peer lost (timeout, disconnect, or out-of-step
    /// message).
    ExecPeerLost {
        /// The reporting worker.
        worker: String,
        /// The peer it blames.
        peer: String,
        /// Pivot step at detection.
        step: u64,
        /// Human-readable detail.
        detail: String,
    },
    /// A worker's receive timed out and it re-armed the wait instead of
    /// declaring the peer lost (transient-fault absorption, layer 1).
    ExecRetry {
        /// The waiting worker.
        worker: String,
        /// The peer it is still waiting on.
        peer: String,
        /// Pivot step `k` of the awaited fragment.
        step: u64,
        /// 1-based re-wait ordinal within this step's receive.
        attempt: u64,
        /// Extra wait granted by this retry (the backoff slice).
        wait_nanos: u64,
    },
    /// The supervisor re-ran the multiply from a checkpointed step
    /// (transient-fault absorption layer 2, and post-conviction resume).
    ExecResume {
        /// 1-based attempt number (the initial run is attempt 1).
        attempt: u64,
        /// First pivot step that still needs work somewhere.
        resume_step: u64,
        /// Pivot steps already banked for every cell (skipped entirely).
        resumed: u64,
        /// Worst-case steps re-run for the least-advanced cell.
        replayed: u64,
        /// Workers participating in this attempt.
        survivors: u64,
        /// Backoff slept before this attempt (0 for post-conviction
        /// resumes, which restart immediately).
        backoff_nanos: u64,
    },
    /// A worker banked its per-cell accumulators with the supervisor.
    ExecCheckpoint {
        /// The checkpointing worker.
        worker: String,
        /// All pivot steps `< through` are folded into the banked cells.
        through: u64,
        /// C cells in the snapshot.
        cells: u64,
    },
    /// The executor gave up on parallel recovery and finished the multiply
    /// serially from the last checkpoint (degraded mode, still `Ok`).
    ExecDegraded {
        /// Workers still alive when the fallback fired.
        survivors: u64,
        /// Convictions absorbed before falling back.
        cascade_depth: u64,
        /// Why: `sole-survivor`, `deadline`, or `retry-budget`.
        reason: String,
        /// Pivot steps the serial tail had to finish (worst cell).
        replayed: u64,
    },
    /// The supervisor aggregated worker verdicts into a culprit.
    ExecBlame {
        /// The processor judged dead.
        dead: String,
        /// Evidence weights per processor, indexed by `Proc::idx`.
        weights: Vec<u64>,
    },
    /// Survivor re-partitioning after a failure.
    ExecRepartition {
        /// The processor removed.
        dead: String,
        /// C elements whose owner changed.
        reassigned: u64,
        /// Workers remaining.
        survivors: u64,
    },
    /// One contiguous slice of a worker's wall time attributed to a phase
    /// (the timeline vocabulary, v4). Start/end are readings of the
    /// installed [`crate::Clock`], so segments from one run share an axis
    /// and are bit-identical under a `FakeClock`.
    ExecSegment {
        /// The worker whose time this is (processor letter).
        worker: String,
        /// Phase: `compute`, `send`, `recv-wait`, `checkpoint`, or
        /// `blocked` (sender stalled on a full channel).
        kind: String,
        /// Peer processor for `send`/`recv-wait`/`blocked` segments
        /// (empty for `compute`/`checkpoint`).
        peer: String,
        /// Pivot step `k` the segment belongs to.
        step: u64,
        /// Segment start on the installed clock.
        start_nanos: u64,
        /// Segment end on the installed clock (`end >= start`).
        end_nanos: u64,
    },
    /// One simulator run completed (aggregate timeline).
    SimRun {
        /// Algorithm name (SCB/PCB/SCO/PCO/PIO).
        algorithm: String,
        /// Simulated communication time (s).
        comm_time: f64,
        /// Simulated total execution time (s).
        exe_time: f64,
        /// Point-to-point transfers scheduled.
        messages: u64,
        /// Elements that crossed the network (hop-weighted).
        elems_sent: u64,
    },
    /// One recorded simulator timeline span (emitted only when span
    /// recording is on).
    SimPhase {
        /// Phase kind: `transfer`, `overlap`, or `compute`.
        phase: String,
        /// Sender (or computing processor).
        from: String,
        /// Receiver (same as `from` for compute phases).
        to: String,
        /// Start time (simulated seconds).
        start: f64,
        /// End time (simulated seconds).
        end: f64,
        /// Elements carried (0 for compute phases).
        elems: u64,
    },
    /// A k-processor search run terminated.
    NprocRunEnd {
        /// Processor count.
        k: u64,
        /// Pushes applied.
        steps: u64,
        /// Reached a fixed point / neutral cycle?
        converged: bool,
        /// VoC of the start state.
        voc_initial: u64,
        /// VoC of the final state.
        voc_final: u64,
    },
}

/// What a sink receives: schema version + timestamp + event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Always [`SCHEMA_VERSION`] for records produced by this build.
    pub v: u32,
    /// Timestamp from the installed [`crate::Clock`].
    pub ts_nanos: u64,
    /// The event payload.
    pub event: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_json() {
        let record = EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: 42,
            event: EventKind::DfaPush {
                step: 7,
                proc: "R".into(),
                dir: "↓".into(),
                push_type: 3,
                delta_voc: -12,
            },
        };
        let json = serde_json::to_string(&record).unwrap();
        let back: EventRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn recovery_events_round_trip_through_json() {
        for event in [
            EventKind::ExecRetry {
                worker: "R".into(),
                peer: "S".into(),
                step: 4,
                attempt: 2,
                wait_nanos: 1_500_000,
            },
            EventKind::ExecResume {
                attempt: 3,
                resume_step: 7,
                resumed: 7,
                replayed: 9,
                survivors: 2,
                backoff_nanos: 50_000_000,
            },
            EventKind::ExecCheckpoint {
                worker: "P".into(),
                through: 11,
                cells: 64,
            },
            EventKind::ExecDegraded {
                survivors: 1,
                cascade_depth: 2,
                reason: "sole-survivor".into(),
                replayed: 5,
            },
        ] {
            let record = EventRecord {
                v: SCHEMA_VERSION,
                ts_nanos: 9,
                event,
            };
            let back: EventRecord =
                serde_json::from_str(&serde_json::to_string(&record).unwrap()).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn segment_events_round_trip_through_json() {
        for (kind, peer) in [
            ("compute", ""),
            ("send", "R"),
            ("recv-wait", "S"),
            ("checkpoint", ""),
            ("blocked", "P"),
        ] {
            let record = EventRecord {
                v: SCHEMA_VERSION,
                ts_nanos: 17,
                event: EventKind::ExecSegment {
                    worker: "P".into(),
                    kind: kind.into(),
                    peer: peer.into(),
                    step: 3,
                    start_nanos: 1_000,
                    end_nanos: 2_500,
                },
            };
            let back: EventRecord =
                serde_json::from_str(&serde_json::to_string(&record).unwrap()).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn unit_like_fields_survive() {
        let record = EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: 0,
            event: EventKind::ExecBlame {
                dead: "S".into(),
                weights: vec![0, 3, 100],
            },
        };
        let back: EventRecord =
            serde_json::from_str(&serde_json::to_string(&record).unwrap()).unwrap();
        assert_eq!(back, record);
    }
}
