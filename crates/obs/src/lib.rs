//! # hetmmm-obs
//!
//! Zero-dependency structured tracing, metrics, and run-manifest layer for
//! the hetmmm workspace.
//!
//! The paper's experimental program (Sections V–VIII) rests on
//! instrumenting ~10,000 DFA runs per speed-ratio configuration and
//! classifying every fixed point; this crate is the reproduction's
//! equivalent: a process-wide facade that the DFA search engine, the
//! threaded executor, and the simulator emit typed events into, plus a
//! metrics registry (push counts, convergence-step histograms, channel
//! wait times, recovery activity) and a [`RunManifest`] artifact written
//! by every experiment binary.
//!
//! ## Cost model
//!
//! With no sink installed, every instrumented call site pays exactly one
//! relaxed atomic load ([`enabled`]) and skips all argument construction;
//! metrics call sites likewise gate on one relaxed load
//! ([`metrics_enabled`]). Hot paths therefore run at pre-instrumentation
//! speed until somebody subscribes.
//!
//! ## Quick start
//!
//! ```
//! use hetmmm_obs as obs;
//! use std::sync::Arc;
//!
//! // Attach a machine-readable sink and run instrumented code.
//! let buf = obs::SharedBuf::new();
//! let id = obs::install_sink(Arc::new(obs::JsonlSink::to_writer(Box::new(buf.clone()))));
//! obs::emit(obs::EventKind::Message { target: "demo".into(), text: "hi".into() });
//! obs::uninstall_sink(id);
//!
//! let line = String::from_utf8(buf.contents()).unwrap();
//! let record: obs::EventRecord = serde_json::from_str(line.trim()).unwrap();
//! assert_eq!(record.v, obs::SCHEMA_VERSION);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod manifest;
pub mod metrics;
pub mod sink;

pub use clock::{Clock, FakeClock, MonotonicClock};
pub use event::{EventKind, EventRecord, SCHEMA_VERSION};
pub use manifest::{
    append_manifest, append_manifest_capped, git_rev, manifest_cap, RunManifest,
    DEFAULT_MANIFEST_CAP, MANIFEST_VERSION,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use sink::{CollectSink, FmtSink, JsonlSink, NullSink, SharedBuf, Sink, SinkId};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Fast-path gate: number of installed sinks, forced to 0 while the
/// registry is suspended (see [`suspend_sinks`]) so [`enabled`] stays a
/// single relaxed load.
static SINK_COUNT: AtomicUsize = AtomicUsize::new(0);
/// Cold-path flag consulted only by install/uninstall/resume to decide
/// what to publish into [`SINK_COUNT`].
static SINKS_SUSPENDED: AtomicBool = AtomicBool::new(false);
/// Events emitted through the facade since process start.
static EVENTS_EMITTED: AtomicU64 = AtomicU64::new(0);
/// Span and sink id allocators.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);
/// Thread ordinal allocator (see [`thread_ordinal`]).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A small, stable ordinal for the calling thread, assigned on first use.
///
/// Stamped into span events so the profiler can reconstruct per-thread
/// call trees from an interleaved stream. Ordinals are process-local and
/// reflect first-touch order, not spawn order — treat them as opaque keys.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

type SinkRegistry = RwLock<Vec<(SinkId, Arc<dyn Sink>)>>;

fn sink_registry() -> &'static SinkRegistry {
    static SINKS: OnceLock<SinkRegistry> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

fn clock_slot() -> &'static RwLock<Arc<dyn Clock>> {
    static CLOCK: OnceLock<RwLock<Arc<dyn Clock>>> = OnceLock::new();
    CLOCK.get_or_init(|| RwLock::new(Arc::new(MonotonicClock)))
}

/// The process-wide metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    static METRICS: OnceLock<MetricsRegistry> = OnceLock::new();
    METRICS.get_or_init(MetricsRegistry::new)
}

/// Is metrics recording on? One relaxed atomic load — check this before
/// doing any per-event metric work on a hot path.
#[inline]
pub fn metrics_enabled() -> bool {
    metrics().is_enabled()
}

/// Is at least one sink installed? One relaxed atomic load — check this
/// before constructing event arguments on a hot path.
#[inline]
pub fn enabled() -> bool {
    SINK_COUNT.load(Ordering::Relaxed) > 0
}

/// Fine-grained span gate. `0` = unset (read the environment on first
/// check), `1` = off, `2` = on.
static FINE_SPANS: AtomicUsize = AtomicUsize::new(0);

/// Turn the fine-grained span tier on or off (overrides the environment).
pub fn set_fine_spans(on: bool) {
    FINE_SPANS.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Is the fine-grained span tier on *and* a sink installed?
///
/// The hottest call sites (per-push occupancy scans, per-attempt cleaning,
/// per-call kernel loops) sit behind this second gate so that a default
/// event stream stays at per-run granularity; set `HETMMM_OBS_FINE_SPANS=1`
/// (or call [`set_fine_spans`]) to capture full profiles.
#[inline]
pub fn fine_spans_enabled() -> bool {
    if !enabled() {
        return false;
    }
    match FINE_SPANS.load(Ordering::Relaxed) {
        0 => {
            let on = matches!(
                std::env::var("HETMMM_OBS_FINE_SPANS").as_deref(),
                Ok("1") | Ok("true") | Ok("on")
            );
            FINE_SPANS.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        2 => true,
        _ => false,
    }
}

/// The installed clock (shared handle).
pub fn clock() -> Arc<dyn Clock> {
    Arc::clone(&clock_slot().read().unwrap_or_else(|p| p.into_inner()))
}

/// Replace the process clock (tests install a [`FakeClock`] for
/// deterministic timestamps and span durations).
pub fn set_clock(clock: Arc<dyn Clock>) {
    *clock_slot().write().unwrap_or_else(|p| p.into_inner()) = clock;
}

/// Restore the default [`MonotonicClock`].
pub fn reset_clock() {
    set_clock(Arc::new(MonotonicClock));
}

/// Publish the effective sink count: the registry length, or 0 while
/// suspended. Callers must hold the registry write lock (or have just
/// released it with `len` still authoritative).
fn publish_sink_count(len: usize) {
    let effective = if SINKS_SUSPENDED.load(Ordering::Relaxed) {
        0
    } else {
        len
    };
    SINK_COUNT.store(effective, Ordering::Relaxed);
}

/// Install a sink; it receives every subsequent event from every thread.
/// Returns a handle for [`uninstall_sink`].
pub fn install_sink(sink: Arc<dyn Sink>) -> SinkId {
    let id = SinkId(NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed));
    let mut sinks = sink_registry().write().unwrap_or_else(|p| p.into_inner());
    sinks.push((id, sink));
    publish_sink_count(sinks.len());
    id
}

/// Temporarily disable delivery to every installed sink *without*
/// uninstalling anything: [`enabled`] flips to `false` (still one relaxed
/// load on the hot path), so instrumented call sites skip argument
/// construction exactly as if no sink were installed.
///
/// This is the disable hook the `obs_overhead` perf-gate workload toggles
/// to A/B the same run with and without instrumentation; it is not meant
/// for steady-state use. Returns whether delivery was previously active.
pub fn suspend_sinks() -> bool {
    let sinks = sink_registry().write().unwrap_or_else(|p| p.into_inner());
    let was = !SINKS_SUSPENDED.swap(true, Ordering::Relaxed);
    publish_sink_count(sinks.len());
    was
}

/// Undo [`suspend_sinks`]: installed sinks receive events again.
pub fn resume_sinks() {
    let sinks = sink_registry().write().unwrap_or_else(|p| p.into_inner());
    SINKS_SUSPENDED.store(false, Ordering::Relaxed);
    publish_sink_count(sinks.len());
}

/// Is delivery currently suspended (see [`suspend_sinks`])?
pub fn sinks_suspended() -> bool {
    SINKS_SUSPENDED.load(Ordering::Relaxed)
}

/// Remove a previously installed sink (flushing it). Returns whether the
/// handle was found.
pub fn uninstall_sink(id: SinkId) -> bool {
    let removed = {
        let mut sinks = sink_registry().write().unwrap_or_else(|p| p.into_inner());
        let before = sinks.len();
        let mut removed_sink = None;
        sinks.retain(|(sid, sink)| {
            if *sid == id {
                removed_sink = Some(Arc::clone(sink));
                false
            } else {
                true
            }
        });
        publish_sink_count(sinks.len());
        debug_assert!(before >= sinks.len());
        removed_sink
    };
    match removed {
        Some(sink) => {
            sink.flush();
            true
        }
        None => false,
    }
}

/// Remove every installed sink (test hygiene).
pub fn uninstall_all_sinks() {
    let drained: Vec<(SinkId, Arc<dyn Sink>)> = {
        let mut sinks = sink_registry().write().unwrap_or_else(|p| p.into_inner());
        let drained = std::mem::take(&mut *sinks);
        SINK_COUNT.store(0, Ordering::Relaxed);
        drained
    };
    for (_, sink) in drained {
        sink.flush();
    }
}

/// Flush every installed sink.
pub fn flush_sinks() {
    for (_, sink) in sink_registry()
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
    {
        sink.flush();
    }
}

/// Events emitted through the facade since process start.
pub fn events_emitted() -> u64 {
    EVENTS_EMITTED.load(Ordering::Relaxed)
}

/// Emit one event to every installed sink. No-op (after one atomic load)
/// when nothing is installed; callers on hot paths should additionally
/// guard argument construction with [`enabled`].
pub fn emit(kind: EventKind) {
    if !enabled() {
        return;
    }
    let record = EventRecord {
        v: SCHEMA_VERSION,
        ts_nanos: clock().now_nanos(),
        event: kind,
    };
    EVENTS_EMITTED.fetch_add(1, Ordering::Relaxed);
    for (_, sink) in sink_registry()
        .read()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
    {
        sink.on_event(&record);
    }
}

/// Route a line of library output through the facade: emitted as a
/// [`EventKind::Message`] when a sink is installed, silently dropped
/// otherwise. This is the replacement for `println!`/`eprintln!` in
/// non-binary code — libraries are silent by default.
pub fn message(target: &str, text: impl Into<String>) {
    if enabled() {
        emit(EventKind::Message {
            target: target.to_string(),
            text: text.into(),
        });
    }
}

/// Like [`message`], but falls back to standard output when no sink is
/// installed. For output that is the *product* of a binary-adjacent
/// library (e.g. the criterion shim's report lines) and must stay visible
/// without setup.
pub fn message_or_stdout(target: &str, text: impl Into<String>) {
    if enabled() {
        message(target, text);
    } else {
        // hetmmm-lint: allow(L003) this is the documented stdout fallback itself
        println!("{}", text.into());
    }
}

/// RAII span: emits [`EventKind::SpanStart`] on creation and
/// [`EventKind::SpanEnd`] (with the clock-measured duration) on drop.
/// Inert when no sink was installed at creation time.
#[derive(Debug)]
pub struct SpanGuard {
    id: u64,
    name: &'static str,
    start_nanos: u64,
    tid: u64,
    active: bool,
}

impl SpanGuard {
    /// The span id (0 for an inert guard).
    pub fn id(&self) -> u64 {
        if self.active {
            self.id
        } else {
            0
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            let nanos = clock().now_nanos().saturating_sub(self.start_nanos);
            emit(EventKind::SpanEnd {
                span: self.id,
                name: self.name.to_string(),
                nanos,
                tid: self.tid,
            });
        }
    }
}

/// Open a span with no argument payload.
pub fn span(name: &'static str) -> SpanGuard {
    span_arg(name, 0)
}

/// Open a span carrying a `u64` payload (seed, pivot step, …).
pub fn span_arg(name: &'static str, arg: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            name,
            start_nanos: 0,
            tid: 0,
            active: false,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let start_nanos = clock().now_nanos();
    let tid = thread_ordinal();
    emit(EventKind::SpanStart {
        span: id,
        name: name.to_string(),
        arg,
        tid,
    });
    SpanGuard {
        id,
        name,
        start_nanos,
        tid,
        active: true,
    }
}

/// Open a fine-tier span with no payload: inert unless
/// [`fine_spans_enabled`] — use on call sites hot enough that even their
/// event volume (not cost) would swamp a default stream.
pub fn fine_span(name: &'static str) -> SpanGuard {
    fine_span_arg(name, 0)
}

/// Open a fine-tier span carrying a `u64` payload.
pub fn fine_span_arg(name: &'static str, arg: u64) -> SpanGuard {
    if fine_spans_enabled() {
        span_arg(name, arg)
    } else {
        SpanGuard {
            id: 0,
            name,
            start_nanos: 0,
            tid: 0,
            active: false,
        }
    }
}

/// Install sinks from the environment:
///
/// - `HETMMM_OBS_JSONL=<path>` — install a [`JsonlSink`] writing there;
/// - `HETMMM_OBS_FMT=stdout|stderr` — install a [`FmtSink`].
///
/// Enables metrics recording when anything was installed. Returns the
/// installed handles (empty when the environment asks for nothing).
pub fn init_from_env() -> Vec<SinkId> {
    let mut ids = Vec::new();
    if let Ok(path) = std::env::var("HETMMM_OBS_JSONL") {
        if !path.is_empty() {
            match JsonlSink::create(&path) {
                Ok(sink) => ids.push(install_sink(Arc::new(sink))),
                // hetmmm-lint: allow(L003) sink setup failed, so no sink can carry this warning
                Err(err) => eprintln!("hetmmm-obs: cannot open {path}: {err}"),
            }
        }
    }
    match std::env::var("HETMMM_OBS_FMT").as_deref() {
        Ok("stdout") => ids.push(install_sink(Arc::new(FmtSink::stdout()))),
        Ok("stderr") => ids.push(install_sink(Arc::new(FmtSink::stderr()))),
        _ => {}
    }
    if !ids.is_empty() {
        metrics().set_enabled(true);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The facade is process-global; serialize the tests that touch it.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn emit_is_noop_without_sinks() {
        let _guard = test_lock();
        uninstall_all_sinks();
        assert!(!enabled());
        let before = events_emitted();
        emit(EventKind::Message {
            target: "t".into(),
            text: "dropped".into(),
        });
        assert_eq!(events_emitted(), before);
    }

    #[test]
    fn install_emit_uninstall_round_trip() {
        let _guard = test_lock();
        uninstall_all_sinks();
        let sink = CollectSink::new();
        let id = install_sink(sink.clone());
        assert!(enabled());
        message("test", "one");
        assert!(uninstall_sink(id));
        assert!(!uninstall_sink(id), "double uninstall is a no-op");
        message("test", "after uninstall — dropped");
        let events = sink.take();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn spans_pair_and_measure_on_the_fake_clock() {
        let _guard = test_lock();
        uninstall_all_sinks();
        let fake = Arc::new(FakeClock::new());
        set_clock(fake.clone());
        let sink = CollectSink::new();
        let id = install_sink(sink.clone());
        {
            let _span = span_arg("test.span", 42);
            fake.advance(1000);
        }
        uninstall_sink(id);
        reset_clock();
        let events = sink.take();
        assert_eq!(events.len(), 2);
        let (start_id, end_id) = match (&events[0].event, &events[1].event) {
            (
                EventKind::SpanStart { span: s, arg, .. },
                EventKind::SpanEnd { span: e, nanos, .. },
            ) => {
                assert_eq!(*arg, 42);
                assert_eq!(*nanos, 1000);
                (*s, *e)
            }
            other => panic!("unexpected events {other:?}"),
        };
        assert_eq!(start_id, end_id);
    }

    #[test]
    fn suspend_and_resume_gate_delivery_without_uninstalling() {
        let _guard = test_lock();
        uninstall_all_sinks();
        resume_sinks();
        let sink = CollectSink::new();
        let id = install_sink(sink.clone());
        assert!(enabled());

        assert!(suspend_sinks(), "was active before suspension");
        assert!(sinks_suspended());
        assert!(!enabled(), "hot-path gate reads closed while suspended");
        message("test", "dropped while suspended");
        // Installing while suspended must not re-open the gate.
        let id2 = install_sink(CollectSink::new());
        assert!(!enabled());
        assert!(!suspend_sinks(), "double suspend reports already-off");

        resume_sinks();
        assert!(!sinks_suspended());
        assert!(enabled());
        message("test", "delivered after resume");
        uninstall_sink(id);
        uninstall_sink(id2);
        let texts: Vec<String> = sink
            .take()
            .into_iter()
            .filter_map(|r| match r.event {
                EventKind::Message { text, .. } => Some(text),
                _ => None,
            })
            .collect();
        assert_eq!(texts, ["delivered after resume"]);
    }

    #[test]
    fn install_uninstall_race_with_concurrent_emitters() {
        let _guard = test_lock();
        uninstall_all_sinks();
        // Hammer install/uninstall from one set of threads while others
        // emit; the registry must never panic, deadlock, or deliver to a
        // freed sink (Arc makes the latter impossible by construction —
        // this asserts liveness and internal-consistency under contention).
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let id = install_sink(CollectSink::new());
                        std::hint::spin_loop();
                        assert!(uninstall_sink(id));
                    }
                });
            }
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..500u64 {
                        emit(EventKind::Message {
                            target: "race".into(),
                            text: i.to_string(),
                        });
                    }
                });
            }
        });
        assert!(!enabled(), "all sinks uninstalled after the race");
    }

    #[test]
    fn message_or_stdout_routes_when_sink_installed() {
        let _guard = test_lock();
        uninstall_all_sinks();
        let sink = CollectSink::new();
        let id = install_sink(sink.clone());
        message_or_stdout("t", "captured");
        uninstall_sink(id);
        let events = sink.take();
        assert_eq!(events.len(), 1);
        match &events[0].event {
            EventKind::Message { text, .. } => assert_eq!(text, "captured"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
