//! The three surviving two-processor shapes of [8].

use hetmmm_partition::{Partition, Proc};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The candidate shapes of the two-processor study.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TwoProcShape {
    /// Classical 1D strips: the slow processor takes the bottom rows.
    StraightLine,
    /// The slow processor takes a square in the bottom-right corner.
    SquareCorner,
    /// The slow processor takes a corner rectangle of the given aspect:
    /// width is `num/den` of the square's side (a family between
    /// Straight-Line and Square-Corner).
    RectangleCorner {
        /// Width numerator.
        num: u32,
        /// Width denominator.
        den: u32,
    },
}

impl TwoProcShape {
    /// Construct the partition for a fast:slow speed ratio of
    /// `fast : slow`. The fast processor is `P`, the slow one `S`;
    /// `R` stays empty.
    pub fn construct(self, n: usize, fast: u32, slow: u32) -> Partition {
        assert!(fast >= slow && slow > 0, "need fast >= slow >= 1");
        let total = u64::from(fast) + u64::from(slow);
        let e_s = ((n * n) as u64 * u64::from(slow) / total) as usize;
        let mut part = Partition::new(n, Proc::P);
        match self {
            TwoProcShape::StraightLine => {
                fill_bottom_rows(&mut part, e_s);
            }
            TwoProcShape::SquareCorner => {
                let side = ((e_s as f64).sqrt().ceil() as usize).clamp(1, n);
                fill_corner_block(&mut part, e_s, side);
            }
            TwoProcShape::RectangleCorner { num, den } => {
                assert!(num > 0 && den > 0);
                let side = (e_s as f64).sqrt();
                let width = ((side * f64::from(num) / f64::from(den)).ceil() as usize).clamp(1, n);
                fill_corner_block(&mut part, e_s, width);
            }
        }
        part
    }
}

impl fmt::Display for TwoProcShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwoProcShape::StraightLine => write!(f, "Straight-Line"),
            TwoProcShape::SquareCorner => write!(f, "Square-Corner"),
            TwoProcShape::RectangleCorner { num, den } => {
                write!(f, "Rectangle-Corner({num}/{den})")
            }
        }
    }
}

/// Fill the bottom rows with `e_s` S elements (partial top row anchored
/// left).
fn fill_bottom_rows(part: &mut Partition, mut e_s: usize) {
    let n = part.n();
    for i in (0..n).rev() {
        if e_s == 0 {
            break;
        }
        let take = e_s.min(n);
        for j in 0..take {
            part.set(i, j, Proc::S);
        }
        e_s -= take;
    }
    assert_eq!(e_s, 0, "slow share exceeds matrix");
}

/// Fill a bottom-right corner block of the given width with `e_s` elements
/// (complete rows from the bottom, ragged top row anchored right).
fn fill_corner_block(part: &mut Partition, mut e_s: usize, width: usize) {
    let n = part.n();
    let left = n - width;
    for i in (0..n).rev() {
        if e_s == 0 {
            break;
        }
        let take = e_s.min(width);
        for j in (n - take)..n {
            part.set(i, j, Proc::S);
        }
        let _ = left;
        e_s -= take;
    }
    assert_eq!(e_s, 0, "corner block too small for slow share");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_follow_ratio() {
        for shape in [
            TwoProcShape::StraightLine,
            TwoProcShape::SquareCorner,
            TwoProcShape::RectangleCorner { num: 2, den: 1 },
        ] {
            let part = shape.construct(40, 3, 1);
            assert_eq!(part.elems(Proc::S), 400, "{shape}");
            assert_eq!(part.elems(Proc::R), 0, "{shape}");
            part.assert_invariants();
        }
    }

    #[test]
    fn straight_line_voc_is_n_squared() {
        // Exactly divisible case: every column shared, no row shared.
        let part = TwoProcShape::StraightLine.construct(40, 3, 1);
        assert_eq!(part.voc(), 40 * 40);
    }

    #[test]
    fn square_corner_voc_matches_closed_form() {
        // VoC = 2·N·side, with side ≈ N√(1/(p+1)).
        let n = 100;
        let part = TwoProcShape::SquareCorner.construct(n, 3, 1);
        let side = ((n * n / 4) as f64).sqrt().ceil();
        assert_eq!(part.voc(), 2 * n as u64 * side as u64);
    }

    #[test]
    fn square_corner_beats_straight_line_above_3_to_1() {
        let n = 120;
        for fast in [4u32, 5, 8, 15] {
            let sc = TwoProcShape::SquareCorner.construct(n, fast, 1);
            let sl = TwoProcShape::StraightLine.construct(n, fast, 1);
            assert!(
                sc.voc() < sl.voc(),
                "fast {fast}: SC {} !< SL {}",
                sc.voc(),
                sl.voc()
            );
        }
        // And loses below the 3:1 crossover.
        let sc = TwoProcShape::SquareCorner.construct(n, 2, 1);
        let sl = TwoProcShape::StraightLine.construct(n, 2, 1);
        assert!(sc.voc() > sl.voc());
    }

    #[test]
    fn square_corner_is_push_fixed_point() {
        use hetmmm_push::is_condensed;
        let part = TwoProcShape::SquareCorner.construct(30, 4, 1);
        assert!(is_condensed(&part));
    }

    #[test]
    fn rectangle_corner_interpolates() {
        // Wider than square → VoC between square-corner and straight-line.
        let n = 120;
        let sc = TwoProcShape::SquareCorner.construct(n, 8, 1).voc();
        let rc = TwoProcShape::RectangleCorner { num: 2, den: 1 }
            .construct(n, 8, 1)
            .voc();
        let sl = TwoProcShape::StraightLine.construct(n, 8, 1).voc();
        assert!(sc < rc, "square beats wider rectangle");
        assert!(rc < sl, "corner rectangle beats strip");
    }
}
