//! The prior-work optimality analysis: Square-Corner vs Straight-Line
//! across speed ratios and all five algorithms.
//!
//! Reproduces the headline results of [8] that motivate the
//! three-processor study (Section I):
//!
//! - under SCB, PCB and PIO, the Square-Corner becomes optimal once the
//!   speed ratio exceeds **3:1** (at 3:1 exactly the two shapes tie:
//!   `2√(1/4) = 1`),
//! - under SCO and PCO (bulk overlap), the Square-Corner is optimal for
//!   **all** ratios.

use crate::shapes2::TwoProcShape;
use hetmmm_cost::{evaluate, Algorithm, Platform};
use hetmmm_partition::Ratio;
use serde::{Deserialize, Serialize};

/// Outcome of one shape-vs-shape comparison.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Fast:1 speed ratio compared at.
    pub fast: u32,
    /// Square-Corner total execution time.
    pub sc_total: f64,
    /// Straight-Line total execution time.
    pub sl_total: f64,
}

impl Comparison {
    /// Did the Square-Corner win (strictly)?
    pub fn sc_wins(&self) -> bool {
        self.sc_total < self.sl_total
    }
}

/// Platform for a `fast : 1` two-processor ratio (the unused processor `R`
/// is given the slow speed; it owns no elements so it never contributes).
fn platform(fast: u32, base_speed: f64, t_send: f64) -> Platform {
    Platform::new(Ratio::new(fast.max(1), 1, 1), base_speed, t_send)
}

/// Compare Square-Corner vs Straight-Line at one ratio under one algorithm.
pub fn sc_vs_sl(algo: Algorithm, n: usize, fast: u32, comp_comm_ratio: f64) -> Comparison {
    // `comp_comm_ratio` sets how expensive communication is relative to
    // computation: t_send = comp_comm_ratio / base_speed (seconds per
    // element vs seconds per update).
    let base_speed = 1e9;
    let plat = platform(fast, base_speed, comp_comm_ratio / base_speed);
    let sc = TwoProcShape::SquareCorner.construct(n, fast, 1);
    let sl = TwoProcShape::StraightLine.construct(n, fast, 1);
    Comparison {
        fast,
        sc_total: evaluate(algo, &sc, &plat).total,
        sl_total: evaluate(algo, &sl, &plat).total,
    }
}

/// The smallest integer ratio `fast : 1` (within `2..=max_ratio`) at which
/// the Square-Corner strictly beats the Straight-Line, or `None` if it
/// never does.
pub fn crossover_ratio(
    algo: Algorithm,
    n: usize,
    max_ratio: u32,
    comp_comm_ratio: f64,
) -> Option<u32> {
    (2..=max_ratio).find(|&fast| sc_vs_sl(algo, n, fast, comp_comm_ratio).sc_wins())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Communication-dominant regime, where the shape difference shows.
    const COMM_HEAVY: f64 = 50.0;

    #[test]
    fn scb_crossover_is_just_above_3_to_1() {
        // Prior work: SC optimal for ratios > 3:1 under the barrier
        // algorithms. At integer granularity the first win is at 4:1.
        let cross =
            crossover_ratio(Algorithm::Scb, 120, 20, COMM_HEAVY).expect("a crossover must exist");
        assert_eq!(cross, 4, "SCB crossover");
    }

    #[test]
    fn pcb_under_eq6_never_crosses() {
        // Under the paper's Eq. 6 accounting, the fast processor of a
        // Square-Corner partition touches every row and column, so it is
        // charged `2N² − ∈P` — always more than the Straight-Line's `∈P`.
        // The prior work's PCB crossover claim rests on exact pairwise
        // volumes (available via the simulator's Unicast mode), not on
        // Eq. 6; with Eq. 6 the Square-Corner never wins PCB. Documented in
        // DESIGN.md §3.5.
        assert_eq!(crossover_ratio(Algorithm::Pcb, 120, 25, COMM_HEAVY), None);
    }

    #[test]
    fn pcb_under_unicast_volumes_favors_sc() {
        // With exact pairwise volumes the fast processor only ships the
        // border fragments, and the Square-Corner wins PCB-style parallel
        // communication broadly — the accounting prior work [8] used.
        use hetmmm_sim::{simulate, SimConfig};
        let base_speed = 1e9;
        for fast in [4u32, 10] {
            let plat = platform(fast, base_speed, COMM_HEAVY / base_speed);
            let sc = TwoProcShape::SquareCorner.construct(120, fast, 1);
            let sl = TwoProcShape::StraightLine.construct(120, fast, 1);
            let a = simulate(&sc, &SimConfig::new(plat, Algorithm::Pcb));
            let b = simulate(&sl, &SimConfig::new(plat, Algorithm::Pcb));
            assert!(
                a.exe_time < b.exe_time,
                "fast {fast}: SC {} vs SL {}",
                a.exe_time,
                b.exe_time
            );
        }
    }

    #[test]
    fn sc_loses_at_2_to_1_under_barriers() {
        for algo in [Algorithm::Scb, Algorithm::Pcb, Algorithm::Pio] {
            let c = sc_vs_sl(algo, 120, 2, COMM_HEAVY);
            assert!(
                !c.sc_wins(),
                "{algo}: SC should lose at 2:1 ({} vs {})",
                c.sc_total,
                c.sl_total
            );
        }
    }

    #[test]
    fn sc_wins_at_high_ratio_under_all_algorithms() {
        // PCB and PCO excluded: their Eq. 6 communication term always
        // charges the Square-Corner's fast processor full rows + columns —
        // see `pcb_under_eq6_never_crosses`.
        for algo in [Algorithm::Scb, Algorithm::Sco, Algorithm::Pio] {
            let c = sc_vs_sl(algo, 120, 10, COMM_HEAVY);
            assert!(
                c.sc_wins(),
                "{algo}: SC should win at 10:1 ({} vs {})",
                c.sc_total,
                c.sl_total
            );
        }
    }

    #[test]
    fn bulk_overlap_favors_sc_at_all_ratios() {
        // The [8] result: with bulk overlap the Square-Corner is optimal
        // for every ratio (its interior is fully local, so overlap hides
        // more communication).
        for fast in 2..=12u32 {
            // PCO shares PCB's Eq. 6 communication term, which penalizes
            // the Square-Corner at low heterogeneity; the all-ratio claim
            // holds for SCO (and for PCO under unicast accounting).
            let algo = Algorithm::Sco;
            let c = sc_vs_sl(algo, 120, fast, COMM_HEAVY);
            assert!(
                c.sc_total <= c.sl_total * 1.001,
                "{algo} at {fast}:1 — SC {} vs SL {}",
                c.sc_total,
                c.sl_total
            );
        }
    }

    #[test]
    fn compute_dominant_regime_mutes_the_difference() {
        // When communication is nearly free, both shapes take essentially
        // the computation time.
        let c = sc_vs_sl(Algorithm::Scb, 120, 5, 0.001);
        let rel = (c.sc_total - c.sl_total).abs() / c.sl_total;
        assert!(rel < 0.01, "relative gap {rel}");
    }
}
