//! Survivor re-partitioning: the fault-tolerance bridge between the
//! three-processor executor and the two-processor optimality results.
//!
//! When one of the three workers dies mid-multiply, the remaining C
//! elements of the dead processor must be re-assigned onto the two
//! survivors. This is exactly the paper's two-processor degenerate case:
//! the prior work ([8], see [`crate::analysis`]) proved that the optimal
//! two-processor arrangement is the Straight-Line strip below a 3:1 speed
//! ratio and the Square-Corner above it. [`degrade_partition`] applies
//! that result *locally*: survivors keep every cell they already own (so
//! no redundant data movement on the recovery path), and only the dead
//! processor's cells are re-painted, split between the survivors in
//! proportion to their speeds and arranged to mimic the winning shape.
//!
//! The survivor speed ratio is inferred from the partition itself: element
//! counts are proportional to processor speeds by construction (Section
//! IX-B, Eq. 12), so `elems(fast) : elems(slow)` recovers the ratio
//! without the executor having to thread a [`hetmmm_partition::Ratio`]
//! through the recovery path.

use crate::shapes2::TwoProcShape;
use hetmmm_partition::{Partition, Proc};
use serde::{Deserialize, Serialize};

/// Result of re-assigning a dead processor's cells onto the survivors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DegradeOutcome {
    /// The degraded partition: `dead` owns nothing, survivors own their
    /// original cells plus their share of the dead cells.
    pub partition: Partition,
    /// The two-processor shape that guided the re-assignment.
    pub shape: TwoProcShape,
    /// Cells that changed owner — always the dead processor's full count.
    pub reassigned: usize,
    /// The faster survivor (by inferred element share).
    pub fast: Proc,
    /// The slower survivor.
    pub slow: Proc,
}

/// Re-assign every cell of `dead` onto the two surviving processors.
///
/// The split is proportional to the survivors' inferred speeds; the
/// arrangement follows the prior-work optimum for the survivor ratio
/// (see [`crate::analysis::crossover_ratio`]): strictly above 3:1 the
/// slow survivor's share is packed Square-Corner style (a compact block
/// grown from the bottom-right corner of the dead region's bounding box,
/// by Chebyshev distance); at or below 3:1 it takes the Straight-Line
/// style row-major tail of the dead region.
///
/// Survivors' existing cells are never touched, so `reassigned` equals
/// the dead processor's element count and the recovery path moves the
/// minimum amount of ownership.
pub fn degrade_partition(part: &Partition, dead: Proc) -> DegradeOutcome {
    let [a, b] = dead.others();
    let (fast, slow) = if part.elems(a) >= part.elems(b) {
        (a, b)
    } else {
        (b, a)
    };
    let fast_w = part.elems(fast);
    let slow_w = part.elems(slow);

    // Row-major by construction of `cells_of`.
    let mut dead_cells: Vec<(usize, usize)> = part.cells_of(dead).collect();
    let reassigned = dead_cells.len();

    // Proportional split, remainder to the fast survivor. If both
    // survivors are empty (the dead processor owned everything) fall back
    // to an even split.
    let total_w = fast_w + slow_w;
    let slow_take = (reassigned * slow_w)
        .checked_div(total_w)
        .unwrap_or(reassigned / 2);

    // Square-Corner pays off strictly above a 3:1 survivor ratio (ties go
    // to the Straight-Line, matching the prior-work crossover).
    let shape = if fast_w > 3 * slow_w {
        TwoProcShape::SquareCorner
    } else {
        TwoProcShape::StraightLine
    };

    if shape == TwoProcShape::SquareCorner && slow_take > 0 {
        // Pack the slow share against the bottom-right corner of the dead
        // region's bounding box: sort by Chebyshev distance to that corner
        // so the selected prefix forms (approximately) a square block.
        let corner_i = dead_cells.iter().map(|&(i, _)| i).max().unwrap_or(0);
        let corner_j = dead_cells.iter().map(|&(_, j)| j).max().unwrap_or(0);
        dead_cells.sort_by_key(|&(i, j)| {
            let di = corner_i.abs_diff(i);
            let dj = corner_j.abs_diff(j);
            (di.max(dj), di + dj, i, j)
        });
        // Slow takes the nearest-to-corner prefix.
        let mut partition = part.clone();
        for (idx, &(i, j)) in dead_cells.iter().enumerate() {
            partition.set(i, j, if idx < slow_take { slow } else { fast });
        }
        DegradeOutcome {
            partition,
            shape,
            reassigned,
            fast,
            slow,
        }
    } else {
        // Straight-Line: slow survivor takes the row-major tail (the
        // bottom strip of the dead region), fast the head.
        let mut partition = part.clone();
        let fast_take = reassigned - slow_take;
        for (idx, &(i, j)) in dead_cells.iter().enumerate() {
            partition.set(i, j, if idx < fast_take { fast } else { slow });
        }
        DegradeOutcome {
            partition,
            shape,
            reassigned,
            fast,
            slow,
        }
    }
}

/// Which survivor should carry a degraded run's serial tail: the fastest
/// by inferred speed (element counts are proportional to speeds by
/// construction, as in [`degrade_partition`]), ties broken toward the
/// lower processor index. `None` when no survivors remain.
pub fn fallback_survivor(part: &Partition, active: &[Proc]) -> Option<Proc> {
    active
        .iter()
        .copied()
        .max_by_key(|&p| (part.elems(p), std::cmp::Reverse(p.idx())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_partition::{PartitionBuilder, Ratio, Rect};

    fn ratio_partition(n: usize, ratio: Ratio) -> Partition {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        hetmmm_partition::random_partition(n, ratio, &mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn survivors_keep_their_cells() {
        let part = PartitionBuilder::new(12)
            .rect(Rect::new(0, 3, 0, 11), Proc::R)
            .rect(Rect::new(8, 11, 0, 11), Proc::S)
            .build();
        let out = degrade_partition(&part, Proc::S);
        assert_eq!(out.reassigned, part.elems(Proc::S));
        assert_eq!(out.partition.elems(Proc::S), 0);
        for (i, j) in part.cells_of(Proc::R) {
            assert_eq!(out.partition.get(i, j), Proc::R, "R cell ({i},{j}) moved");
        }
        for (i, j) in part.cells_of(Proc::P) {
            assert_eq!(out.partition.get(i, j), Proc::P, "P cell ({i},{j}) moved");
        }
        out.partition.assert_invariants();
    }

    #[test]
    fn split_is_proportional_to_inferred_speeds() {
        // 5:3:1 — kill S; survivors P (5 shares) and R (3 shares).
        let part = ratio_partition(24, Ratio::new(5, 3, 1));
        let dead_count = part.elems(Proc::S);
        let out = degrade_partition(&part, Proc::S);
        assert_eq!(out.fast, Proc::P);
        assert_eq!(out.slow, Proc::R);
        let slow_expected =
            dead_count * part.elems(Proc::R) / (part.elems(Proc::R) + part.elems(Proc::P));
        assert_eq!(
            out.partition.elems(Proc::R),
            part.elems(Proc::R) + slow_expected
        );
        assert_eq!(
            out.partition.elems(Proc::P),
            part.elems(Proc::P) + dead_count - slow_expected
        );
    }

    #[test]
    fn shape_follows_the_prior_work_crossover() {
        // 10:1:1 — kill R: survivor ratio P:S ≈ 10:1 > 3:1 → Square-Corner.
        let part = ratio_partition(30, Ratio::new(10, 1, 1));
        let out = degrade_partition(&part, Proc::R);
        assert_eq!(out.shape, TwoProcShape::SquareCorner);

        // 2:2:1 — kill S: survivor ratio P:R = 2:2 ≤ 3:1 → Straight-Line.
        let part = ratio_partition(30, Ratio::new(2, 2, 1));
        let out = degrade_partition(&part, Proc::S);
        assert_eq!(out.shape, TwoProcShape::StraightLine);
    }

    #[test]
    fn square_corner_share_is_compact() {
        // The slow survivor's new cells should hug the bottom-right corner
        // of the dead region: max Chebyshev radius ~ sqrt(share).
        let part = PartitionBuilder::new(20)
            .rect(Rect::new(10, 19, 10, 19), Proc::S)
            .build(); // S owns a 10x10 corner block; P the rest; R empty.
                      // Give R a token presence so the ratio P:R is extreme.
        let part = {
            let mut p = part;
            p.set(0, 0, Proc::R);
            p
        };
        let out = degrade_partition(&part, Proc::S);
        assert_eq!(out.shape, TwoProcShape::SquareCorner);
        assert_eq!(out.slow, Proc::R);
        let new_r: Vec<(usize, usize)> = out
            .partition
            .cells_of(Proc::R)
            .filter(|&(i, j)| part.get(i, j) == Proc::S)
            .collect();
        if !new_r.is_empty() {
            let radius = new_r
                .iter()
                .map(|&(i, j)| (19usize - i).max(19 - j))
                .max()
                .unwrap();
            let side = (new_r.len() as f64).sqrt().ceil() as usize;
            assert!(
                radius <= side + 1,
                "radius {radius} for {} cells",
                new_r.len()
            );
        }
    }

    #[test]
    fn degrading_empty_proc_is_a_no_op() {
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(4, 7, 0, 7), Proc::S)
            .build(); // R owns nothing.
        let out = degrade_partition(&part, Proc::R);
        assert_eq!(out.reassigned, 0);
        assert_eq!(out.partition, part);
    }

    #[test]
    fn fallback_survivor_prefers_fastest_then_lower_index() {
        let part = PartitionBuilder::new(8)
            .rect(Rect::new(0, 1, 0, 7), Proc::R) // 16 cells
            .rect(Rect::new(2, 7, 0, 7), Proc::S) // 48 cells
            .build(); // P owns nothing.
        assert_eq!(
            fallback_survivor(&part, &[Proc::R, Proc::S, Proc::P]),
            Some(Proc::S)
        );
        assert_eq!(fallback_survivor(&part, &[Proc::R, Proc::P]), Some(Proc::R));
        // Tie on element count (both zero): lower index wins.
        let empty_tie = Partition::new(8, Proc::S);
        assert_eq!(
            fallback_survivor(&empty_tie, &[Proc::R, Proc::P]),
            Some(Proc::R)
        );
        assert_eq!(fallback_survivor(&part, &[]), None);
    }

    #[test]
    fn dead_owner_of_everything_splits_evenly() {
        let part = Partition::new(10, Proc::P);
        let out = degrade_partition(&part, Proc::P);
        assert_eq!(out.reassigned, 100);
        assert_eq!(out.partition.elems(Proc::P), 0);
        let r = out.partition.elems(Proc::R);
        let s = out.partition.elems(Proc::S);
        assert_eq!(r + s, 100);
        assert!(r.abs_diff(s) <= 2, "even split expected: R {r} vs S {s}");
    }
}
