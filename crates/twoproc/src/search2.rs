//! The two-processor shape search — the prior work's experiment, run on
//! this reproduction's Push machinery.
//!
//! [8] proved analytically that for two processors the Push always reduces
//! an arbitrary arrangement to one of three shapes (Straight-Line,
//! Square-Corner, Rectangle-Corner). We can *demonstrate* that with the
//! three-processor engine by leaving `R` empty: the DFA then degenerates to
//! the two-processor case, and every fixed point should profile as a single
//! corner-anchored rectangle-like region for `S` (of which the three named
//! shapes are the aspect-ratio family).

use hetmmm_partition::{Partition, Proc};
use hetmmm_push::{beautify, DfaConfig, DfaOutcome, DfaRunner, PushPlan};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Classification of a condensed two-processor fixed point by the slow
/// processor's rectangle geometry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TwoProcOutcome {
    /// Full-width (or full-height) strip.
    StraightLine,
    /// Aspect within 25% of square.
    SquareCorner,
    /// Rectangle of intermediate aspect.
    RectangleCorner,
    /// Not rectangle-like (never observed for condensed outcomes).
    Other,
}

/// Random two-processor start state: `slow/(fast+slow)` of the elements go
/// to `S`, uniformly; `R` stays empty.
pub fn random_two_proc(n: usize, fast: u32, slow: u32, rng: &mut StdRng) -> Partition {
    let total = u64::from(fast) + u64::from(slow);
    let quota = ((n * n) as u64 * u64::from(slow) / total) as usize;
    let mut cells: Vec<(usize, usize)> = (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
    cells.shuffle(rng);
    let mut part = Partition::new(n, Proc::P);
    for &(i, j) in cells.iter().take(quota) {
        part.set(i, j, Proc::S);
    }
    part
}

/// One seeded two-processor search: random start, random direction subset
/// for `S`, condense, finish with beautify.
pub fn run_two_proc_search(n: usize, fast: u32, slow: u32, seed: u64) -> DfaOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let part = random_two_proc(n, fast, slow, &mut rng);
    // Random 1-4 directions for S only (R owns nothing).
    let count = rng.random_range(1..=4usize);
    let mut dirs = hetmmm_push::Direction::ALL;
    dirs.shuffle(&mut rng);
    let plan = PushPlan::scripted(&[], &dirs[..count]);
    let runner = DfaRunner::new(DfaConfig::new(
        n,
        hetmmm_partition::Ratio::new(fast.max(slow), slow.min(fast).max(1), 1),
    ));
    let mut out = runner.run_with(part, plan, &mut rng);
    beautify(&mut out.partition);
    out.voc_final = out.partition.voc();
    out
}

/// Classify a condensed two-processor partition.
pub fn classify_two_proc(part: &Partition) -> TwoProcOutcome {
    let n = part.n();
    let Some(rect) = part.enclosing_rect(Proc::S) else {
        return TwoProcOutcome::Other;
    };
    let fill = part.elems(Proc::S) as f64 / rect.area() as f64;
    if fill < 0.8 {
        return TwoProcOutcome::Other;
    }
    if rect.width() == n || rect.height() == n {
        return TwoProcOutcome::StraightLine;
    }
    let aspect = rect.width() as f64 / rect.height() as f64;
    if (0.8..=1.25).contains(&aspect) {
        TwoProcOutcome::SquareCorner
    } else {
        TwoProcOutcome::RectangleCorner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_proc_fixed_points_are_one_of_three_shapes() {
        let mut census = std::collections::HashMap::new();
        for seed in 0..24u64 {
            let out = run_two_proc_search(30, 4, 1, seed);
            assert!(out.converged, "seed {seed}");
            let shape = classify_two_proc(&out.partition);
            *census.entry(format!("{shape:?}")).or_insert(0usize) += 1;
            assert_ne!(
                shape,
                TwoProcOutcome::Other,
                "seed {seed}: prior-work theorem violated\n{:?}",
                out.partition
            );
        }
        // The search should find at least two of the three shape families
        // across two dozen random direction plans.
        assert!(census.len() >= 2, "census too uniform: {census:?}");
    }

    #[test]
    fn search_reduces_voc_substantially() {
        let out = run_two_proc_search(40, 3, 1, 7);
        assert!(out.voc_final * 2 <= out.voc_initial);
    }

    #[test]
    fn r_stays_empty_throughout() {
        let out = run_two_proc_search(24, 5, 1, 3);
        assert_eq!(out.partition.elems(Proc::R), 0);
    }

    #[test]
    fn classifier_on_constructed_shapes() {
        use crate::shapes2::TwoProcShape;
        let sl = TwoProcShape::StraightLine.construct(40, 4, 1);
        assert_eq!(classify_two_proc(&sl), TwoProcOutcome::StraightLine);
        let sc = TwoProcShape::SquareCorner.construct(40, 4, 1);
        assert_eq!(classify_two_proc(&sc), TwoProcOutcome::SquareCorner);
        let rc = TwoProcShape::RectangleCorner { num: 2, den: 1 }.construct(40, 4, 1);
        assert_eq!(classify_two_proc(&rc), TwoProcOutcome::RectangleCorner);
    }
}
