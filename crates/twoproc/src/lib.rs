//! # hetmmm-twoproc
//!
//! The two-processor substrate: the shapes, optimality results and Push
//! behaviour of the paper's prior work ([8], DeFlumere, Lastovetsky &
//! Becker, HCW 2012), which the three-processor study extends.
//!
//! For two processors (one fast, one slow) the prior work proved that only
//! three general shapes survive the Push operation:
//!
//! - **Straight-Line**: the classical 1D strip partition,
//! - **Square-Corner**: the slow processor takes a square in a corner,
//! - **Rectangle-Corner**: the slow processor takes a full-height (or
//!   full-width) rectangle flush to one side... of intermediate aspect,
//!
//! and that the Square-Corner is globally optimal when the speed ratio
//! exceeds 3:1 under the barrier / interleaved algorithms (SCB, PCB, PIO)
//! and for *all* ratios under bulk overlap (SCO, PCO).
//!
//! We embed the two-processor world into the three-processor [`Partition`]
//! by leaving processor `R` empty: the fast processor is `P`, the slow one
//! `S`. All three-processor machinery (Push, cost models, simulator,
//! executor) then applies unchanged — which is itself a regression test of
//! that machinery's degenerate-case handling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod degrade;
pub mod search2;
pub mod shapes2;

pub use analysis::{crossover_ratio, sc_vs_sl, Comparison};
pub use degrade::{degrade_partition, fallback_survivor, DegradeOutcome};
pub use search2::{classify_two_proc, run_two_proc_search, TwoProcOutcome};
pub use shapes2::TwoProcShape;
