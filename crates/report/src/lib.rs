//! # hetmmm-report
//!
//! The consumption side of hetmmm observability: everything that *reads*
//! the event/metric/manifest streams `hetmmm-obs` produces.
//!
//! The paper's experimental program is statistical observation over
//! ~10,000 DFA runs per speed ratio (§V–VIII); this crate is the analysis
//! bench for the reproduction's equivalent streams:
//!
//! - [`profile`] — reconstructs `SpanStart`/`SpanEnd` JSONL into a merged
//!   per-thread call tree ([`SpanProfile`]) with call counts, self/total
//!   durations, and folded-stack (flamegraph-compatible) output;
//! - [`analyze`] — renders run reports: the push acceptance funnel by
//!   type×direction, steps-to-convergence and recv-wait summaries with
//!   p50/p95/p99, and per-processor volume breakdowns ([`Analysis`],
//!   [`ManifestSummary`]);
//! - [`perf`] — the perf-gate data model: seeded workload results
//!   ([`BenchSuite`]) and the noise-tolerant baseline comparison
//!   ([`compare`]);
//! - [`timeline`] — per-processor timeline reconstruction from
//!   `ExecSegment` events: Chrome-trace export, critical-path analysis,
//!   and measured T_comm/T_exe/overlap per worker ([`Timeline`]);
//! - [`audit`] — the model-vs-measured prediction audit: calibrates an
//!   effective platform from a measured timeline and reports per-model
//!   relative error for all five cost models ([`audit::audit`]);
//! - [`trend`] — the bench-history trend store: drift detection over
//!   `results/bench_history.jsonl` ([`trend::analyze`]) plus capped
//!   history rotation ([`trend::append_history_capped`]);
//! - [`store`] — the unified [`RunStore`]: manifests, bench history, and
//!   labeled event streams joined into one indexed model;
//! - [`triage`] — automated regression triage: joins a drifted workload
//!   against span self-time and exact-counter diffs ([`triage::triage`]);
//! - [`dashboard`] — the zero-dependency static HTML census dashboard
//!   ([`dashboard::render_dashboard`]);
//! - [`input`] — lenient JSONL loaders that survive truncated lines
//!   ([`EventLog`], [`ManifestLog`]).
//!
//! Every renderer is deterministic: aggregation is keyed by span path /
//! metric name in sorted maps, raw span ids and thread ordinals are never
//! printed, so the same event stream (e.g. a seeded run under `FakeClock`)
//! produces byte-identical output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod audit;
pub mod dashboard;
pub mod input;
pub mod perf;
pub mod profile;
pub mod store;
pub mod timeline;
pub mod trend;
pub mod triage;

pub use analyze::{Analysis, ExactSummary, ManifestSummary, PushFunnel};
pub use audit::{Audit, AuditError, AuditRow};
pub use dashboard::{render_dashboard, DashboardInputs, WinnerCell, WinnerMap};
pub use input::{EventLog, ManifestLog};
pub use perf::{compare, median, BenchEntry, BenchSuite, GateIssue, BENCH_VERSION};
pub use profile::{FoldWeight, SpanNode, SpanProfile};
pub use store::{RunGroup, RunKey, RunStore, SeriesPoint, WorkloadSeries};
pub use timeline::{CriticalPath, Segment, Timeline, WorkerSummary};
pub use trend::{
    analyze as analyze_trend, append_history_capped, history_cap, TrendEntry, TrendReport,
    DEFAULT_HISTORY_CAP, TREND_VERSION,
};
pub use triage::{triage, CounterSuspect, SpanSuspect, TriageReport, WorkloadTriage};

/// Render the combined text report for one event stream (and optionally a
/// manifest log): analysis sections, manifest summary, the timeline
/// section (when the stream carries `ExecSegment` events), then the
/// span-tree profile. This is what the `obs_report` binary prints; tests
/// call it directly to assert byte-identical output for seeded runs.
pub fn full_report(events: &EventLog, manifests: Option<&ManifestLog>) -> String {
    let mut out = String::new();
    let analysis = Analysis::from_events(events);
    out.push_str(&analysis.render_text());
    if let Some(log) = manifests {
        out.push('\n');
        out.push_str(&ManifestSummary::from_manifests(log).render_text());
    }
    let tl = Timeline::from_events(&events.records);
    if !tl.is_empty() {
        out.push('\n');
        out.push_str(&tl.render_text());
    }
    let profile = SpanProfile::from_events(&events.records);
    out.push('\n');
    out.push_str(&profile.render_text());
    out
}
