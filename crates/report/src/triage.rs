//! Automated regression triage: from "this workload drifted" to "this
//! span path / counter is why".
//!
//! The trend analyzer ([`crate::trend`]) says *which* workload got slower;
//! a human still had to download event streams and diff profiles by hand
//! to learn *why*. This module automates that join: given a
//! [`TrendReport`] plus (optionally) the baseline and latest span
//! profiles of the drifted workload, it diffs self-time per span path,
//! pulls the exact-counter deltas the trend entry already carries, ranks
//! the suspects, and renders a [`TriageReport`] as text and JSON — so CI
//! can print "push.clean self-nanos under dfa.run grew 2.1x, counters
//! unchanged" straight into the PR summary.
//!
//! Ranking rules (documented in DESIGN.md §13):
//!
//! 1. span suspects are ranked by **absolute self-time delta** (latest −
//!    baseline), descending — a small leaf that doubled matters less than
//!    a big leaf that grew 20%;
//! 2. ties break on path, ascending, so output is deterministic;
//! 3. paths present on only one side still rank (they *appeared* or
//!    *vanished* — both are suspects after a behavioral change);
//! 4. counter deltas come from the trend entries' exact counters and are
//!    reported verbatim: any change is behavioral, not noise.
//!
//! Without profiles the report degrades gracefully to counters-only mode
//! and says so — it never fabricates a span verdict.

use crate::profile::{SpanNode, SpanProfile};
use crate::trend::TrendReport;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema version of the JSON triage report.
pub const TRIAGE_VERSION: u32 = 1;

/// Span suspects kept per drifted workload (ranked, rest dropped).
pub const MAX_SPAN_SUSPECTS: usize = 8;

/// One span path whose self time moved between baseline and latest.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SpanSuspect {
    /// `;`-joined span path (folded-stack convention), e.g.
    /// `dfa.run;push.apply;push.clean`.
    pub path: String,
    /// Self nanoseconds in the baseline profile (0 when absent).
    pub baseline_self_nanos: u64,
    /// Self nanoseconds in the latest profile (0 when absent).
    pub latest_self_nanos: u64,
    /// `latest − baseline`, the ranking key (absolute value).
    pub delta_nanos: i64,
    /// `latest / baseline` rounded to 2 decimals; 0.0 when the baseline
    /// had no self time (the path *appeared* — see `delta_nanos`).
    pub growth: f64,
}

impl SpanSuspect {
    /// One human-readable clause: leaf name, parent context, and how the
    /// self time moved.
    pub fn describe(&self) -> String {
        let (root, leaf) = match (self.path.split(';').next(), self.path.rsplit(';').next()) {
            (Some(root), Some(leaf)) => (root, leaf),
            _ => (self.path.as_str(), self.path.as_str()),
        };
        let context = if root == leaf {
            String::new()
        } else {
            format!(" under {root}")
        };
        if self.baseline_self_nanos == 0 {
            format!(
                "{leaf} self-nanos{context} appeared (0 -> {} ns)",
                self.latest_self_nanos
            )
        } else if self.latest_self_nanos == 0 {
            format!(
                "{leaf} self-nanos{context} vanished ({} -> 0 ns)",
                self.baseline_self_nanos
            )
        } else if self.delta_nanos >= 0 {
            format!("{leaf} self-nanos{context} grew {:.1}x", self.growth)
        } else {
            format!("{leaf} self-nanos{context} shrank to {:.1}x", self.growth)
        }
    }
}

/// One counter whose exact value changed between the previous and latest
/// trend entries.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct CounterSuspect {
    /// Counter name.
    pub counter: String,
    /// Previous value (absent when the counter is new).
    pub previous: Option<u64>,
    /// Latest value (absent when the counter vanished).
    pub latest: Option<u64>,
}

/// The triage verdict for one drifted workload.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct WorkloadTriage {
    /// Workload name.
    pub workload: String,
    /// Reference (median-of-predecessors) wall nanoseconds.
    pub reference_nanos: u64,
    /// Latest wall nanoseconds.
    pub latest_nanos: u64,
    /// `latest / reference`, rounded to 2 decimals.
    pub ratio: f64,
    /// Ranked span suspects (empty in counters-only mode).
    pub spans: Vec<SpanSuspect>,
    /// Exact counter changes (empty means behavior looks unchanged).
    pub counters: Vec<CounterSuspect>,
    /// One-line explanation, e.g. `push.clean self-nanos under dfa.run
    /// grew 2.1x, counters unchanged`.
    pub verdict: String,
}

/// The full triage output: text for humans, JSON for CI.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct TriageReport {
    /// Always [`TRIAGE_VERSION`].
    pub v: u32,
    /// Did any workload drift at all?
    pub drift: bool,
    /// Were span profiles available to diff?
    pub profiled: bool,
    /// Workloads that did *not* drift (count only; names stay in the
    /// trend report).
    pub clean_workloads: u64,
    /// Per-drifted-workload verdicts, in trend-report (name) order.
    pub workloads: Vec<WorkloadTriage>,
    /// The single headline CI prints: the worst workload's verdict, or an
    /// all-clear.
    pub headline: String,
}

impl TriageReport {
    /// Serialize to one JSON line (schema-versioned).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| format!("{{\"v\":{TRIAGE_VERSION}}}"))
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== triage ==");
        let _ = writeln!(out, "{}", self.headline);
        for w in &self.workloads {
            let _ = writeln!(
                out,
                "  {}: {} -> {} ns ({:.2}x)",
                w.workload, w.reference_nanos, w.latest_nanos, w.ratio
            );
            for s in &w.spans {
                let _ = writeln!(
                    out,
                    "    span {}: {} -> {} self ns (delta {:+})",
                    s.path, s.baseline_self_nanos, s.latest_self_nanos, s.delta_nanos
                );
            }
            for c in &w.counters {
                let _ = writeln!(
                    out,
                    "    counter {} changed {:?} -> {:?}",
                    c.counter, c.previous, c.latest
                );
            }
        }
        out
    }
}

/// Flatten a span profile to `path -> self_nanos` with `;`-joined paths
/// (the folded-stack convention shared with [`SpanProfile::folded`]).
pub fn flatten_self_nanos(profile: &SpanProfile) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    fn walk(out: &mut BTreeMap<String, u64>, nodes: &BTreeMap<String, SpanNode>, prefix: &str) {
        for (name, node) in nodes {
            let path = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix};{name}")
            };
            out.insert(path.clone(), node.self_nanos());
            walk(out, &node.children, &path);
        }
    }
    walk(&mut out, &profile.roots, "");
    out
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Rank span suspects between two flattened profiles: absolute delta
/// descending, then path ascending; zero-delta paths are dropped.
fn rank_spans(
    baseline: &BTreeMap<String, u64>,
    latest: &BTreeMap<String, u64>,
) -> Vec<SpanSuspect> {
    let mut suspects = Vec::new();
    let paths: std::collections::BTreeSet<&String> = baseline.keys().chain(latest.keys()).collect();
    for path in paths {
        let b = baseline.get(path).copied().unwrap_or(0);
        let l = latest.get(path).copied().unwrap_or(0);
        if b == l {
            continue;
        }
        let delta = l as i64 - b as i64;
        let growth = if b > 0 {
            round2(l as f64 / b as f64)
        } else {
            0.0
        };
        suspects.push(SpanSuspect {
            path: path.clone(),
            baseline_self_nanos: b,
            latest_self_nanos: l,
            delta_nanos: delta,
            growth,
        });
    }
    suspects.sort_by(|a, b| {
        b.delta_nanos
            .abs()
            .cmp(&a.delta_nanos.abs())
            .then_with(|| a.path.cmp(&b.path))
    });
    suspects.truncate(MAX_SPAN_SUSPECTS);
    suspects
}

/// Join a trend report against optional baseline/latest span profiles and
/// produce the ranked triage verdict.
///
/// The profiles describe the drifted workload's event streams (one
/// seeded run each at the baseline and latest revisions). When several
/// workloads drifted, the same profile pair is applied to each — callers
/// with per-workload streams can call `triage` once per workload with a
/// filtered [`TrendReport`].
pub fn triage(
    trend: &TrendReport,
    baseline: Option<&SpanProfile>,
    latest: Option<&SpanProfile>,
) -> TriageReport {
    let profiled = baseline.is_some() && latest.is_some();
    let spans = if let (Some(b), Some(l)) = (baseline, latest) {
        rank_spans(&flatten_self_nanos(b), &flatten_self_nanos(l))
    } else {
        Vec::new()
    };

    let mut report = TriageReport {
        v: TRIAGE_VERSION,
        drift: trend.has_drift(),
        profiled,
        clean_workloads: trend.workloads.iter().filter(|w| !w.drifted).count() as u64,
        ..TriageReport::default()
    };

    for w in trend.workloads.iter().filter(|w| w.drifted) {
        let counters: Vec<CounterSuspect> = w
            .counter_deltas
            .iter()
            .map(|(counter, previous, latest)| CounterSuspect {
                counter: counter.clone(),
                previous: *previous,
                latest: *latest,
            })
            .collect();
        let counters_clause = match counters.len() {
            0 => "counters unchanged".to_string(),
            1 => format!("counter {} changed", counters[0].counter),
            n => format!("{n} counters changed"),
        };
        let verdict = match spans.first() {
            Some(top) => format!("{}, {}", top.describe(), counters_clause),
            None if profiled => format!("no span self-time moved, {counters_clause}"),
            None => format!("no span profiles supplied, {counters_clause}"),
        };
        report.workloads.push(WorkloadTriage {
            workload: w.name.clone(),
            reference_nanos: w.reference_nanos,
            latest_nanos: w.latest_nanos,
            ratio: round2(w.ratio),
            spans: spans.clone(),
            counters,
            verdict,
        });
    }

    report.headline = if trend.insufficient_history {
        "triage: insufficient history — nothing to compare yet".to_string()
    } else {
        match report.workloads.iter().max_by(|a, b| {
            a.ratio
                .partial_cmp(&b.ratio)
                .unwrap_or(std::cmp::Ordering::Equal)
        }) {
            Some(worst) => format!(
                "triage: {} is {:.2}x slower — {}",
                worst.workload, worst.ratio, worst.verdict
            ),
            None => format!(
                "triage: no drift across {} workload{}",
                report.clean_workloads,
                if report.clean_workloads == 1 { "" } else { "s" }
            ),
        }
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trend::{analyze, TrendEntry, TREND_VERSION};
    use hetmmm_obs::{EventKind, EventRecord, SCHEMA_VERSION};

    fn entry(median: u64, counters: &[(&str, u64)]) -> TrendEntry {
        TrendEntry {
            v: TREND_VERSION,
            git_rev: "r".into(),
            unix_secs: 0,
            k: 3,
            medians: vec![("w".into(), median)],
            counters: counters
                .iter()
                .map(|(c, v)| ("w".to_string(), c.to_string(), *v))
                .collect(),
        }
    }

    fn start(span: u64, name: &str) -> EventRecord {
        EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: 0,
            event: EventKind::SpanStart {
                span,
                name: name.into(),
                arg: 0,
                tid: 1,
            },
        }
    }

    fn end(span: u64, name: &str, nanos: u64) -> EventRecord {
        EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: 0,
            event: EventKind::SpanEnd {
                span,
                name: name.into(),
                nanos,
                tid: 1,
            },
        }
    }

    /// dfa.run { push.apply { push.clean } } with a chosen self time for
    /// push.clean.
    fn profile_with_clean(clean_nanos: u64) -> SpanProfile {
        SpanProfile::from_events(&[
            start(1, "dfa.run"),
            start(2, "push.apply"),
            start(3, "push.clean"),
            end(3, "push.clean", clean_nanos),
            end(2, "push.apply", clean_nanos + 10),
            end(1, "dfa.run", clean_nanos + 30),
        ])
    }

    #[test]
    fn injected_slowdown_names_the_right_span_path() {
        // Baseline: push.clean self = 100. Latest: 210 (2.1x).
        let baseline = profile_with_clean(100);
        let latest = profile_with_clean(210);
        let trend = analyze(
            &[entry(100, &[("pushes", 7)]), entry(200, &[("pushes", 7)])],
            10,
            1.5,
        );
        assert!(trend.has_drift());
        let report = triage(&trend, Some(&baseline), Some(&latest));
        assert!(report.drift);
        assert!(report.profiled);
        let w = &report.workloads[0];
        assert_eq!(w.workload, "w");
        let top = &w.spans[0];
        assert_eq!(top.path, "dfa.run;push.apply;push.clean");
        assert_eq!(top.baseline_self_nanos, 100);
        assert_eq!(top.latest_self_nanos, 210);
        assert!((top.growth - 2.1).abs() < 1e-9, "{}", top.growth);
        assert!(
            w.verdict
                .contains("push.clean self-nanos under dfa.run grew 2.1x"),
            "{}",
            w.verdict
        );
        assert!(w.verdict.contains("counters unchanged"), "{}", w.verdict);
        assert!(
            report.headline.contains("2.00x slower"),
            "{}",
            report.headline
        );
    }

    #[test]
    fn counter_changes_surface_in_the_verdict() {
        let trend = analyze(
            &[entry(100, &[("pushes", 7)]), entry(200, &[("pushes", 9)])],
            10,
            1.5,
        );
        let report = triage(&trend, None, None);
        let w = &report.workloads[0];
        assert_eq!(w.counters.len(), 1);
        assert_eq!(w.counters[0].counter, "pushes");
        assert_eq!(
            (w.counters[0].previous, w.counters[0].latest),
            (Some(7), Some(9))
        );
        assert!(
            w.verdict.contains("no span profiles supplied"),
            "{}",
            w.verdict
        );
        assert!(
            w.verdict.contains("counter pushes changed"),
            "{}",
            w.verdict
        );
    }

    #[test]
    fn no_drift_is_an_all_clear() {
        let trend = analyze(&[entry(100, &[]), entry(101, &[])], 10, 1.5);
        let report = triage(&trend, None, None);
        assert!(!report.drift);
        assert!(report.workloads.is_empty());
        assert_eq!(report.clean_workloads, 1);
        assert!(report.headline.contains("no drift"), "{}", report.headline);
    }

    #[test]
    fn appeared_and_vanished_paths_still_rank() {
        let baseline = SpanProfile::from_events(&[start(1, "old"), end(1, "old", 50)]);
        let latest = SpanProfile::from_events(&[start(1, "new"), end(1, "new", 500)]);
        let suspects = rank_spans(&flatten_self_nanos(&baseline), &flatten_self_nanos(&latest));
        assert_eq!(suspects.len(), 2);
        assert_eq!(suspects[0].path, "new");
        assert_eq!(suspects[0].growth, 0.0, "appeared path has no growth ratio");
        assert!(
            suspects[0].describe().contains("appeared"),
            "{}",
            suspects[0].describe()
        );
        assert_eq!(suspects[1].path, "old");
        assert!(
            suspects[1].describe().contains("vanished"),
            "{}",
            suspects[1].describe()
        );
    }

    #[test]
    fn json_round_trips_and_text_is_deterministic() {
        let trend = analyze(&[entry(100, &[]), entry(200, &[])], 10, 1.5);
        let baseline = profile_with_clean(100);
        let latest = profile_with_clean(300);
        let a = triage(&trend, Some(&baseline), Some(&latest));
        let b = triage(&trend, Some(&baseline), Some(&latest));
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_text(), b.render_text());
        let v: serde_json::Value = serde_json::from_str(&a.to_json()).expect("valid json");
        assert!(v.get("headline").is_some());
        assert!(a.render_text().contains("== triage =="));
    }
}
