//! The bench-history trend store and drift analyzer.
//!
//! The single-baseline perf gate ([`crate::perf`]) catches step
//! regressions but is blind to *slow* drift: a 5% slowdown per PR never
//! trips a 1.8× ratio, yet compounds into one within a quarter. To close
//! that hole, `perf_gate` appends one [`TrendEntry`] per run to
//! `results/bench_history.jsonl`, and the `bench_trend` binary analyzes
//! the last `window` entries per workload: the newest median against the
//! median-of-medians of its predecessors (robust to one noisy run), plus
//! deterministic-counter deltas against the immediately preceding entry.
//!
//! Fewer than two history entries is not an error — the analyzer reports
//! "insufficient history" and passes, so the CI step is a graceful no-op
//! on a fresh checkout or cache miss.

use crate::perf::{median, BenchSuite};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema version of a history line.
pub const TREND_VERSION: u32 = 1;

/// One appended history record: the run's medians and counters, flattened
/// from the [`BenchSuite`] the gate measured.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrendEntry {
    /// Always [`TREND_VERSION`] for entries produced by this build.
    pub v: u32,
    /// Git revision the run was measured at.
    pub git_rev: String,
    /// Unix timestamp (seconds) of the run; 0 when unavailable.
    pub unix_secs: u64,
    /// Repetitions per workload in the run.
    pub k: u64,
    /// `(workload, median wall ns)` pairs, in suite order.
    pub medians: Vec<(String, u64)>,
    /// `(workload, counter, value)` triples, in suite order.
    pub counters: Vec<(String, String, u64)>,
}

impl TrendEntry {
    /// Flatten one measured suite into a history record.
    pub fn from_suite(suite: &BenchSuite, unix_secs: u64) -> TrendEntry {
        TrendEntry {
            v: TREND_VERSION,
            git_rev: suite.git_rev.clone(),
            unix_secs,
            k: suite.k,
            medians: suite
                .entries
                .iter()
                .map(|e| (e.name.clone(), e.median_wall_nanos))
                .collect(),
            counters: suite
                .entries
                .iter()
                .flat_map(|e| {
                    e.counters
                        .iter()
                        .map(|(c, v)| (e.name.clone(), c.clone(), *v))
                })
                .collect(),
        }
    }
}

/// Parse a history file leniently: unparsable or wrong-version lines are
/// counted and skipped, never fatal (the store is append-only across
/// schema generations).
pub fn parse_history(text: &str) -> (Vec<TrendEntry>, usize) {
    let mut entries = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match serde_json::from_str::<TrendEntry>(line) {
            Ok(e) if e.v == TREND_VERSION => entries.push(e),
            _ => skipped += 1,
        }
    }
    (entries, skipped)
}

/// Default per-workload cap on `results/bench_history.jsonl` entries
/// (see [`history_cap`]).
pub const DEFAULT_HISTORY_CAP: usize = 256;

/// History per-workload entry cap from `HETMMM_BENCH_HISTORY_CAP`,
/// mirroring `HETMMM_OBS_MANIFEST_CAP` semantics exactly: unset uses
/// [`DEFAULT_HISTORY_CAP`]; `0` or an unparsable value means unlimited.
/// `perf_gate` passes the result to [`append_history_capped`] so the
/// append-only store cannot grow without bound across CI cache restores.
pub fn history_cap() -> Option<usize> {
    match std::env::var("HETMMM_BENCH_HISTORY_CAP") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(0) | Err(_) => None,
            Ok(cap) => Some(cap),
        },
        Err(_) => Some(DEFAULT_HISTORY_CAP),
    }
}

/// Append one trend entry, then rotate the file so every *workload* keeps
/// at most its newest `cap` entries (`None` = unlimited, plain append).
///
/// Rotation scans newest→oldest and keeps a line while any workload named
/// in its medians still has fewer than `cap` kept entries — so a line
/// survives as long as *some* workload needs it, and a workload that was
/// dropped from the suite ages out naturally. Unparsable or
/// foreign-version lines are dropped whenever a trim actually rewrites
/// the file (they carry no workload to retain them for); when every
/// parsed line already fits the cap the file is left byte-untouched.
pub fn append_history_capped(
    path: impl AsRef<std::path::Path>,
    entry: &TrendEntry,
    cap: Option<usize>,
) -> std::io::Result<()> {
    use std::io::Write as _;
    let path = path.as_ref();
    let line = serde_json::to_string(entry)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(f, "{line}")?;
    }
    let Some(cap) = cap else { return Ok(()) };
    let text = std::fs::read_to_string(path)?;
    let parsed: Vec<(usize, TrendEntry)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .filter_map(|(i, l)| {
            serde_json::from_str::<TrendEntry>(l.trim())
                .ok()
                .filter(|e| e.v == TREND_VERSION)
                .map(|e| (i, e))
        })
        .collect();
    let mut kept_per_workload: BTreeMap<&str, usize> = BTreeMap::new();
    let mut keep_indices: Vec<usize> = Vec::new();
    let mut trimmed = false;
    for (i, e) in parsed.iter().rev() {
        let needed = e
            .medians
            .iter()
            .any(|(w, _)| kept_per_workload.get(w.as_str()).copied().unwrap_or(0) < cap);
        if needed {
            for (w, _) in &e.medians {
                *kept_per_workload.entry(w.as_str()).or_default() += 1;
            }
            keep_indices.push(*i);
        } else {
            trimmed = true;
        }
    }
    if !trimmed {
        return Ok(());
    }
    keep_indices.sort_unstable();
    let lines: Vec<&str> = text.lines().collect();
    let mut out = String::new();
    for i in keep_indices {
        out.push_str(lines[i].trim());
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// One workload's drift verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadTrend {
    /// Workload name.
    pub name: String,
    /// History points considered (including the newest).
    pub points: usize,
    /// Median-of-medians of the predecessor entries (ns).
    pub reference_nanos: u64,
    /// The newest entry's median (ns).
    pub latest_nanos: u64,
    /// `latest / reference` (1.0 when the reference is 0).
    pub ratio: f64,
    /// Did the ratio exceed the threshold?
    pub drifted: bool,
    /// Counters whose value changed vs the previous entry:
    /// `(counter, previous, latest)`.
    pub counter_deltas: Vec<(String, Option<u64>, Option<u64>)>,
}

/// The full analysis over one history window.
#[derive(Clone, Debug, Default)]
pub struct TrendReport {
    /// Per-workload verdicts, sorted by name.
    pub workloads: Vec<WorkloadTrend>,
    /// History entries available (before windowing).
    pub entries: usize,
    /// Unparsable/foreign lines skipped by the loader.
    pub skipped_lines: usize,
    /// True when there was not enough history to say anything.
    pub insufficient_history: bool,
}

impl TrendReport {
    /// Any workload beyond the drift threshold?
    pub fn has_drift(&self) -> bool {
        self.workloads.iter().any(|w| w.drifted)
    }

    /// Human-readable report.
    pub fn render_text(&self, threshold: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== bench trend ({} entries, {} skipped lines) ==",
            self.entries, self.skipped_lines
        );
        if self.insufficient_history {
            let _ = writeln!(
                out,
                "insufficient history (< 2 entries) — nothing to compare yet"
            );
            return out;
        }
        for w in &self.workloads {
            let verdict = if w.drifted { "DRIFT" } else { "ok" };
            let _ = writeln!(
                out,
                "  {}: {} -> {} ns over {} points ({:.2}x vs {:.2}x limit) {}",
                w.name, w.reference_nanos, w.latest_nanos, w.points, w.ratio, threshold, verdict
            );
            for (counter, prev, cur) in &w.counter_deltas {
                let _ = writeln!(out, "    counter {counter} changed {prev:?} -> {cur:?}");
            }
        }
        out
    }
}

/// Analyze the last `window` history entries with a drift `threshold` on
/// the `latest / median-of-predecessor-medians` ratio.
pub fn analyze(entries: &[TrendEntry], window: usize, threshold: f64) -> TrendReport {
    let mut report = TrendReport {
        entries: entries.len(),
        ..TrendReport::default()
    };
    if entries.len() < 2 {
        report.insufficient_history = true;
        return report;
    }
    let start = entries.len().saturating_sub(window.max(2));
    let window_entries = &entries[start..];
    let latest = match window_entries.last() {
        Some(e) => e,
        None => {
            report.insufficient_history = true;
            return report;
        }
    };
    let predecessors = &window_entries[..window_entries.len() - 1];
    let previous = predecessors.last();

    // Per-workload series over the predecessors.
    let mut series: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for entry in predecessors {
        for (name, med) in &entry.medians {
            series.entry(name).or_default().push(*med);
        }
    }

    for (name, latest_nanos) in &latest.medians {
        let Some(history) = series.get(name.as_str()) else {
            // New workload: no reference yet, nothing to drift against.
            continue;
        };
        let reference = median(history);
        let ratio = if reference > 0 {
            *latest_nanos as f64 / reference as f64
        } else {
            1.0
        };
        let mut counter_deltas = Vec::new();
        if let Some(prev) = previous {
            let prev_val = |counter: &str| {
                prev.counters
                    .iter()
                    .find(|(w, c, _)| w == name && c == counter)
                    .map(|(_, _, v)| *v)
            };
            for (w, counter, v) in &latest.counters {
                if w != name {
                    continue;
                }
                let p = prev_val(counter);
                if p != Some(*v) {
                    counter_deltas.push((counter.clone(), p, Some(*v)));
                }
            }
            for (w, counter, v) in &prev.counters {
                if w == name
                    && !latest
                        .counters
                        .iter()
                        .any(|(lw, lc, _)| lw == name && lc == counter)
                {
                    counter_deltas.push((counter.clone(), Some(*v), None));
                }
            }
        }
        report.workloads.push(WorkloadTrend {
            name: name.clone(),
            points: history.len() + 1,
            reference_nanos: reference,
            latest_nanos: *latest_nanos,
            ratio,
            drifted: ratio > threshold,
            counter_deltas,
        });
    }
    report.workloads.sort_by(|a, b| a.name.cmp(&b.name));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{BenchEntry, BENCH_VERSION};

    fn entry_at(median: u64, counters: &[(&str, u64)]) -> TrendEntry {
        TrendEntry {
            v: TREND_VERSION,
            git_rev: "r".into(),
            unix_secs: 0,
            k: 3,
            medians: vec![("w".into(), median)],
            counters: counters
                .iter()
                .map(|(c, v)| ("w".to_string(), c.to_string(), *v))
                .collect(),
        }
    }

    #[test]
    fn insufficient_history_is_a_pass() {
        let r = analyze(&[], 10, 1.5);
        assert!(r.insufficient_history);
        assert!(!r.has_drift());
        let r = analyze(&[entry_at(100, &[])], 10, 1.5);
        assert!(r.insufficient_history);
        assert!(r.render_text(1.5).contains("insufficient history"));
    }

    #[test]
    fn slow_drift_is_caught_step_noise_is_not() {
        // Five stable runs then a 2x jump.
        let mut h: Vec<TrendEntry> = (0..5).map(|_| entry_at(100, &[])).collect();
        h.push(entry_at(200, &[]));
        let r = analyze(&h, 10, 1.5);
        assert!(r.has_drift());
        assert_eq!(r.workloads[0].reference_nanos, 100);
        assert_eq!(r.workloads[0].latest_nanos, 200);

        // One noisy predecessor does not poison the median reference.
        let h = vec![
            entry_at(100, &[]),
            entry_at(100, &[]),
            entry_at(900, &[]),
            entry_at(100, &[]),
            entry_at(120, &[]),
        ];
        let r = analyze(&h, 10, 1.5);
        assert!(!r.has_drift(), "{:?}", r.workloads);
    }

    #[test]
    fn windowing_ignores_ancient_history() {
        // Old fast entries outside the window must not flag today's
        // stable-but-slower steady state.
        let mut h: Vec<TrendEntry> = (0..20).map(|_| entry_at(10, &[])).collect();
        h.extend((0..6).map(|_| entry_at(100, &[])));
        let r = analyze(&h, 5, 1.5);
        assert!(!r.has_drift());
        assert_eq!(r.workloads[0].reference_nanos, 100);
    }

    #[test]
    fn counter_deltas_compare_against_previous_entry() {
        let h = vec![
            entry_at(100, &[("pushes", 42), ("gone", 1)]),
            entry_at(100, &[("pushes", 43), ("fresh", 9)]),
        ];
        let r = analyze(&h, 10, 1.5);
        let deltas = &r.workloads[0].counter_deltas;
        assert_eq!(deltas.len(), 3, "{deltas:?}");
        assert!(deltas.contains(&("pushes".into(), Some(42), Some(43))));
        assert!(deltas.contains(&("fresh".into(), None, Some(9))));
        assert!(deltas.contains(&("gone".into(), Some(1), None)));
        // Counter changes alone are not wall drift.
        assert!(!r.has_drift());
    }

    #[test]
    fn history_round_trips_and_parses_leniently() {
        let suite = BenchSuite {
            v: BENCH_VERSION,
            git_rev: "abc".into(),
            k: 5,
            entries: vec![BenchEntry {
                name: "w".into(),
                median_wall_nanos: 123,
                wall_nanos: vec![123, 124],
                counters: vec![("c".into(), 7)],
            }],
        };
        let e = TrendEntry::from_suite(&suite, 1_700_000_000);
        let line = serde_json::to_string(&e).unwrap();
        let text = format!("{line}\nnot json\n{line}\n");
        let (entries, skipped) = parse_history(&text);
        assert_eq!(entries.len(), 2);
        assert_eq!(skipped, 1);
        assert_eq!(entries[0], e);
        assert_eq!(entries[0].medians, vec![("w".to_string(), 123)]);
        assert_eq!(entries[0].counters, vec![("w".into(), "c".into(), 7)]);
    }

    #[test]
    fn zero_reference_never_divides() {
        let h = vec![entry_at(0, &[]), entry_at(100, &[])];
        let r = analyze(&h, 10, 1.5);
        assert!(!r.has_drift());
        assert!((r.workloads[0].ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capped_append_keeps_last_k_entries_per_workload() {
        let path = std::env::temp_dir().join(format!(
            "hetmmm_history_cap_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        // Ten entries for workload "w" with cap 3: only the newest three
        // survive.
        for i in 0..10u64 {
            let e = TrendEntry {
                medians: vec![("w".into(), 100 + i)],
                ..entry_at(0, &[])
            };
            append_history_capped(&path, &e, Some(3)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let (entries, skipped) = parse_history(&text);
        assert_eq!(skipped, 0);
        assert_eq!(entries.len(), 3);
        let medians: Vec<u64> = entries.iter().map(|e| e.medians[0].1).collect();
        assert_eq!(medians, vec![107, 108, 109], "newest three, in order");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn capped_append_retains_lines_any_workload_still_needs() {
        let path = std::env::temp_dir().join(format!(
            "hetmmm_history_cap_mixed_test_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        // An old entry that is the ONLY one carrying workload "rare" must
        // survive a cap that would otherwise age it out.
        let rare = TrendEntry {
            medians: vec![("w".into(), 1), ("rare".into(), 9)],
            ..entry_at(0, &[])
        };
        append_history_capped(&path, &rare, Some(2)).unwrap();
        for i in 0..5u64 {
            let e = TrendEntry {
                medians: vec![("w".into(), 100 + i)],
                ..entry_at(0, &[])
            };
            append_history_capped(&path, &e, Some(2)).unwrap();
        }
        let (entries, _) = parse_history(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(entries.len(), 3, "2 newest for w + the rare carrier");
        assert!(entries[0].medians.iter().any(|(w, _)| w == "rare"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn uncapped_append_never_rewrites_foreign_lines() {
        let path = std::env::temp_dir().join(format!(
            "hetmmm_history_nocap_test_{}.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, "not json at all\n").unwrap();
        append_history_capped(&path, &entry_at(5, &[]), None).unwrap();
        // Under the cap, nothing rewrites either: the foreign line stays.
        append_history_capped(&path, &entry_at(6, &[]), Some(10)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("not json at all\n"), "{text}");
        let (entries, skipped) = parse_history(&text);
        assert_eq!((entries.len(), skipped), (2, 1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn new_workload_without_reference_is_skipped() {
        let h = vec![
            entry_at(100, &[]),
            TrendEntry {
                medians: vec![("w".into(), 100), ("brand_new".into(), 5)],
                ..entry_at(100, &[])
            },
        ];
        let r = analyze(&h, 10, 1.5);
        assert_eq!(r.workloads.len(), 1);
        assert_eq!(r.workloads[0].name, "w");
    }
}
