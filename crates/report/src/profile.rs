//! Span-tree profiler: turn an interleaved `SpanStart`/`SpanEnd` stream
//! into a merged call tree.
//!
//! Span events carry the emitting thread's ordinal (`tid`, schema v2);
//! nesting is only meaningful *within* one thread's sub-stream, and each
//! sub-stream is ordered (the facade's single emit path preserves
//! per-thread program order even though threads interleave in the file).
//! Reconstruction therefore keeps one open-frame stack per tid and merges
//! completed frames into a single tree keyed by span-name *path* — raw
//! span ids and tids never reach the output, which is what makes reports
//! byte-identical across runs whose thread interleavings differ.

use hetmmm_obs::{EventKind, EventRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One merged node: every occurrence of a span name at one call path.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SpanNode {
    /// Times a span opened at this path.
    pub calls: u64,
    /// Sum of clock-measured durations of the closed occurrences.
    pub total_nanos: u64,
    /// Occurrences never closed (stream truncated mid-span, or a guard
    /// leaked past the end of capture).
    pub unclosed: u64,
    /// Child spans by name.
    pub children: BTreeMap<String, SpanNode>,
}

impl SpanNode {
    /// Total time minus time attributed to children (saturating: an
    /// unclosed parent can report less total than its closed children).
    pub fn self_nanos(&self) -> u64 {
        let child_total: u64 = self.children.values().map(|c| c.total_nanos).sum();
        self.total_nanos.saturating_sub(child_total)
    }
}

/// Which weight a folded-stack line carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldWeight {
    /// Self time in nanoseconds (the flamegraph default). All-zero under
    /// an unadvanced `FakeClock`.
    SelfNanos,
    /// Call counts — shape-of-the-computation profiles that stay
    /// meaningful when durations are synthetic or zero.
    Calls,
}

/// The merged call tree over every thread in a stream.
#[derive(Debug, Default, Clone)]
pub struct SpanProfile {
    /// Top-level spans by name.
    pub roots: BTreeMap<String, SpanNode>,
    /// Distinct thread ordinals seen in span events.
    pub threads: usize,
    /// `SpanEnd` events whose id matched no open frame on their thread.
    pub unmatched_ends: u64,
}

/// An open frame on one thread's reconstruction stack.
struct Frame {
    span: u64,
    name: String,
}

fn node_at_mut<'a>(
    roots: &'a mut BTreeMap<String, SpanNode>,
    path: &[String],
) -> Option<&'a mut SpanNode> {
    let (first, rest) = path.split_first()?;
    let mut node = roots.entry(first.clone()).or_default();
    for name in rest {
        node = node.children.entry(name.clone()).or_default();
    }
    Some(node)
}

fn stack_path(stack: &[Frame]) -> Vec<String> {
    stack.iter().map(|f| f.name.clone()).collect()
}

impl SpanProfile {
    /// Reconstruct the profile from a record stream (non-span events are
    /// ignored).
    pub fn from_events(records: &[EventRecord]) -> SpanProfile {
        let mut profile = SpanProfile::default();
        let mut stacks: BTreeMap<u64, Vec<Frame>> = BTreeMap::new();
        for record in records {
            match &record.event {
                EventKind::SpanStart {
                    span, name, tid, ..
                } => {
                    let stack = stacks.entry(*tid).or_default();
                    stack.push(Frame {
                        span: *span,
                        name: name.clone(),
                    });
                    let path = stack_path(stack);
                    if let Some(node) = node_at_mut(&mut profile.roots, &path) {
                        node.calls += 1;
                    }
                }
                EventKind::SpanEnd {
                    span, nanos, tid, ..
                } => {
                    let stack = stacks.entry(*tid).or_default();
                    let Some(pos) = stack.iter().rposition(|f| f.span == *span) else {
                        profile.unmatched_ends += 1;
                        continue;
                    };
                    // Frames above the match never saw their SpanEnd
                    // (dropped out of order or lost): close them as
                    // unclosed so time is still attributed to the match.
                    while stack.len() > pos + 1 {
                        let path = stack_path(stack);
                        if let Some(node) = node_at_mut(&mut profile.roots, &path) {
                            node.unclosed += 1;
                        }
                        stack.pop();
                    }
                    let path = stack_path(stack);
                    if let Some(node) = node_at_mut(&mut profile.roots, &path) {
                        node.total_nanos += nanos;
                    }
                    stack.pop();
                }
                _ => {}
            }
        }
        // Anything still open when the stream ended is unclosed.
        for stack in stacks.values_mut() {
            while !stack.is_empty() {
                let path = stack_path(stack);
                if let Some(node) = node_at_mut(&mut profile.roots, &path) {
                    node.unclosed += 1;
                }
                stack.pop();
            }
        }
        profile.threads = stacks.len();
        profile
    }

    /// Human-readable indented tree, sorted by span name at every level.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== span profile ({} thread{}, {} unmatched end{}) ==",
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.unmatched_ends,
            if self.unmatched_ends == 1 { "" } else { "s" },
        );
        let _ = writeln!(
            out,
            "{:>10} {:>14} {:>14} {:>9}  span",
            "calls", "total_ns", "self_ns", "unclosed"
        );
        fn walk(out: &mut String, nodes: &BTreeMap<String, SpanNode>, depth: usize) {
            for (name, node) in nodes {
                let _ = writeln!(
                    out,
                    "{:>10} {:>14} {:>14} {:>9}  {}{}",
                    node.calls,
                    node.total_nanos,
                    node.self_nanos(),
                    node.unclosed,
                    "  ".repeat(depth),
                    name
                );
                walk(out, &node.children, depth + 1);
            }
        }
        walk(&mut out, &self.roots, 0);
        out
    }

    /// Folded-stack output, one `a;b;c <weight>` line per path with a
    /// non-zero weight — feed to any flamegraph renderer.
    pub fn folded(&self, weight: FoldWeight) -> String {
        let mut out = String::new();
        fn walk(
            out: &mut String,
            nodes: &BTreeMap<String, SpanNode>,
            prefix: &str,
            weight: FoldWeight,
        ) {
            for (name, node) in nodes {
                let path = if prefix.is_empty() {
                    name.clone()
                } else {
                    format!("{prefix};{name}")
                };
                let w = match weight {
                    FoldWeight::SelfNanos => node.self_nanos(),
                    FoldWeight::Calls => node.calls,
                };
                if w > 0 {
                    let _ = writeln!(out, "{path} {w}");
                }
                walk(out, &node.children, &path, weight);
            }
        }
        walk(&mut out, &self.roots, "", weight);
        out
    }

    /// CSV rows `path,calls,total_nanos,self_nanos,unclosed` (path joined
    /// with `;`), header included.
    pub fn csv(&self) -> String {
        let mut out = String::from("path,calls,total_nanos,self_nanos,unclosed\n");
        fn walk(out: &mut String, nodes: &BTreeMap<String, SpanNode>, prefix: &str) {
            for (name, node) in nodes {
                let path = if prefix.is_empty() {
                    name.clone()
                } else {
                    format!("{prefix};{name}")
                };
                let _ = writeln!(
                    out,
                    "{path},{},{},{},{}",
                    node.calls,
                    node.total_nanos,
                    node.self_nanos(),
                    node.unclosed
                );
                walk(out, &node.children, &path);
            }
        }
        walk(&mut out, &self.roots, "");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_obs::SCHEMA_VERSION;

    fn start(span: u64, name: &str, tid: u64) -> EventRecord {
        EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: 0,
            event: EventKind::SpanStart {
                span,
                name: name.into(),
                arg: 0,
                tid,
            },
        }
    }

    fn end(span: u64, name: &str, nanos: u64, tid: u64) -> EventRecord {
        EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: 0,
            event: EventKind::SpanEnd {
                span,
                name: name.into(),
                nanos,
                tid,
            },
        }
    }

    #[test]
    fn nested_spans_attribute_self_time_to_the_parent() {
        let records = vec![
            start(1, "outer", 1),
            start(2, "inner", 1),
            end(2, "inner", 30, 1),
            start(3, "inner", 1),
            end(3, "inner", 20, 1),
            end(1, "outer", 100, 1),
        ];
        let p = SpanProfile::from_events(&records);
        let outer = &p.roots["outer"];
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.total_nanos, 100);
        assert_eq!(outer.self_nanos(), 50);
        let inner = &outer.children["inner"];
        assert_eq!(inner.calls, 2);
        assert_eq!(inner.total_nanos, 50);
        assert!(!p.roots.contains_key("inner"), "inner is not a root");
    }

    #[test]
    fn interleaved_threads_keep_separate_parent_attribution() {
        // Thread 1 runs a;b, thread 2 runs c;b, events fully interleaved
        // in the stream. b must appear under BOTH parents, never crossed.
        let records = vec![
            start(1, "a", 1),
            start(10, "c", 2),
            start(2, "b", 1),
            start(11, "b", 2),
            end(2, "b", 5, 1),
            end(11, "b", 7, 2),
            end(1, "a", 50, 1),
            end(10, "c", 70, 2),
        ];
        let p = SpanProfile::from_events(&records);
        assert_eq!(p.threads, 2);
        assert_eq!(p.roots["a"].children["b"].total_nanos, 5);
        assert_eq!(p.roots["c"].children["b"].total_nanos, 7);
        assert_eq!(p.roots["a"].total_nanos, 50);
        assert_eq!(p.roots["c"].total_nanos, 70);
    }

    #[test]
    fn truncated_stream_counts_unclosed_frames() {
        // Stream ends while outer and inner are both open.
        let records = vec![
            start(1, "outer", 1),
            start(2, "inner", 1),
            end(2, "inner", 10, 1),
            start(3, "inner", 1),
            // truncation: no end for span 3 or span 1
        ];
        let p = SpanProfile::from_events(&records);
        let outer = &p.roots["outer"];
        assert_eq!(outer.unclosed, 1);
        assert_eq!(outer.total_nanos, 0, "no duration for an unclosed span");
        let inner = &outer.children["inner"];
        assert_eq!(inner.calls, 2);
        assert_eq!(inner.unclosed, 1);
        assert_eq!(inner.total_nanos, 10);
    }

    #[test]
    fn out_of_order_end_closes_intervening_frames_as_unclosed() {
        // The end for `outer` arrives while `leak` is still open (its
        // guard was forgotten): leak is recorded as unclosed, outer still
        // gets its duration.
        let records = vec![
            start(1, "outer", 1),
            start(2, "leak", 1),
            end(1, "outer", 40, 1),
        ];
        let p = SpanProfile::from_events(&records);
        assert_eq!(p.roots["outer"].total_nanos, 40);
        assert_eq!(p.roots["outer"].children["leak"].unclosed, 1);
        assert_eq!(p.unmatched_ends, 0);
    }

    #[test]
    fn foreign_end_is_counted_not_crashed() {
        let records = vec![end(99, "ghost", 5, 1)];
        let p = SpanProfile::from_events(&records);
        assert_eq!(p.unmatched_ends, 1);
        assert!(p.roots.is_empty());
    }

    #[test]
    fn folded_output_is_sorted_and_weighted() {
        let records = vec![
            start(1, "a", 1),
            start(2, "b", 1),
            end(2, "b", 30, 1),
            end(1, "a", 100, 1),
        ];
        let p = SpanProfile::from_events(&records);
        assert_eq!(p.folded(FoldWeight::SelfNanos), "a 70\na;b 30\n");
        assert_eq!(p.folded(FoldWeight::Calls), "a 1\na;b 1\n");
    }

    #[test]
    fn zero_duration_spans_still_fold_by_calls() {
        // FakeClock without advancement: every duration is 0 — the calls
        // weight must still produce a non-empty profile.
        let records = vec![start(1, "a", 1), end(1, "a", 0, 1)];
        let p = SpanProfile::from_events(&records);
        assert_eq!(p.folded(FoldWeight::SelfNanos), "");
        assert_eq!(p.folded(FoldWeight::Calls), "a 1\n");
    }
}
