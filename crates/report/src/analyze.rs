//! Run analyzer: aggregate reports over event streams and manifest logs.
//!
//! Three views, mirroring the paper's own tables: the push acceptance
//! funnel (how many plan attempts became applied pushes, by type and
//! direction — §VI's push-type taxonomy), convergence/latency summaries
//! with p50/p95/p99, and per-processor communication volume (the VoC the
//! whole search optimizes). Everything aggregates into sorted maps so the
//! rendered output is deterministic for a fixed input stream.

use crate::input::{EventLog, ManifestLog};
use hetmmm_obs::{EventKind, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Exact order statistics over raw `u64` observations (nearest-rank).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactSummary {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
}

impl ExactSummary {
    /// Summarize a value set; `None` when empty.
    pub fn from_values(mut values: Vec<u64>) -> Option<ExactSummary> {
        if values.is_empty() {
            return None;
        }
        values.sort_unstable();
        let rank = |q: f64| -> u64 {
            let idx = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
            values[idx]
        };
        Some(ExactSummary {
            count: values.len() as u64,
            sum: values.iter().sum(),
            min: values[0],
            max: values[values.len() - 1],
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
        })
    }

    fn render_line(&self, label: &str) -> String {
        format!(
            "  {label:<22} n={} sum={} min={} p50={} p95={} p99={} max={}\n",
            self.count, self.sum, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// The push acceptance funnel: plan attempts → applied pushes, broken
/// down by push type × direction (accepted) and processor × direction
/// (rejected).
#[derive(Debug, Default, Clone)]
pub struct PushFunnel {
    /// DFA runs seen (`DfaRunStart` events).
    pub runs: u64,
    /// Accepted pushes (`DfaPush`).
    pub accepted: u64,
    /// Rejected plan attempts (`DfaPushRejected`).
    pub rejected: u64,
    /// Accepted counts keyed by `(push_type, direction)`.
    pub accepted_by_type_dir: BTreeMap<(u8, String), u64>,
    /// Rejected counts keyed by `(proc, direction)`.
    pub rejected_by_proc_dir: BTreeMap<(String, String), u64>,
    /// Sum of applied ΔVoC (≤ 0: every accepted push lowers or keeps VoC).
    pub delta_voc_total: i64,
    /// Run terminations by kind (`FixedPoint`, `NeutralCycle`, …).
    pub terminations: BTreeMap<String, u64>,
}

impl PushFunnel {
    /// Total plan attempts (accepted + rejected).
    pub fn attempts(&self) -> u64 {
        self.accepted + self.rejected
    }
}

/// The recovery funnel: how faults moved through the executor's
/// four-layer recovery engine, from transient absorption (receive
/// re-waits) through checkpointed resumes and convictions down to the
/// degraded serial fallback. Aggregated from the v3 recovery events.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryFunnel {
    /// Worker-level receive re-waits (`ExecRetry`) — layer 1.
    pub recv_retries: u64,
    /// Extra wait granted by those re-waits (total backoff slices, ns).
    pub retry_wait_nanos: u64,
    /// Per-worker checkpoint writes (`ExecCheckpoint`) — layer 2.
    pub checkpoints: u64,
    /// Supervisor attempt resumes (`ExecResume`).
    pub resumes: u64,
    /// Backoff slept before resumes (ns; 0 for post-conviction restarts).
    pub backoff_nanos: u64,
    /// Pivot steps skipped thanks to banked checkpoints, over all resumes.
    pub resumed_steps: u64,
    /// Worst-case pivot steps re-run, over all resumes.
    pub replayed_steps: u64,
    /// Peer-lost testimonies workers filed (`ExecPeerLost`).
    pub peer_lost: u64,
    /// Convictions by convicted processor (`ExecBlame`) — layer 3.
    pub convictions_by_proc: BTreeMap<String, u64>,
    /// Survivor re-partitionings (`ExecRepartition`).
    pub repartitions: u64,
    /// C elements whose owner changed across all repartitions.
    pub elems_reassigned: u64,
    /// Degraded serial fallbacks by reason (`ExecDegraded`) — layer 4.
    pub degraded_by_reason: BTreeMap<String, u64>,
}

impl RecoveryFunnel {
    /// Total convictions across processors.
    pub fn convictions(&self) -> u64 {
        self.convictions_by_proc.values().sum()
    }

    /// Total degraded fallbacks across reasons.
    pub fn degraded(&self) -> u64 {
        self.degraded_by_reason.values().sum()
    }

    /// True when the stream carried no recovery activity at all (the
    /// render skips the section entirely for clean runs).
    pub fn is_empty(&self) -> bool {
        *self == RecoveryFunnel::default()
    }
}

/// Everything the analyzer extracts from one event stream.
#[derive(Debug, Default, Clone)]
pub struct Analysis {
    /// The push funnel.
    pub funnel: PushFunnel,
    /// The recovery funnel.
    pub recovery: RecoveryFunnel,
    /// Steps-to-convergence over `DfaRunEnd.steps`.
    pub steps_to_convergence: Option<ExactSummary>,
    /// Receive-wait times over `ExecRecv.wait_nanos`.
    pub recv_wait_nanos: Option<ExactSummary>,
    /// Elements sent per processor (`ExecSend.from`).
    pub sent_elems_by_proc: BTreeMap<String, u64>,
    /// Elements received per processor (`ExecRecv.to`).
    pub recv_elems_by_proc: BTreeMap<String, u64>,
    /// Records in the input stream.
    pub records: usize,
    /// Unparsable lines in the input stream.
    pub skipped_lines: usize,
}

impl Analysis {
    /// Aggregate one event stream.
    pub fn from_events(log: &EventLog) -> Analysis {
        let mut a = Analysis {
            records: log.records.len(),
            skipped_lines: log.skipped_lines,
            ..Analysis::default()
        };
        let mut steps = Vec::new();
        let mut waits = Vec::new();
        for record in &log.records {
            match &record.event {
                EventKind::DfaRunStart { .. } => a.funnel.runs += 1,
                EventKind::DfaPush {
                    dir,
                    push_type,
                    delta_voc,
                    ..
                } => {
                    a.funnel.accepted += 1;
                    a.funnel.delta_voc_total += delta_voc;
                    *a.funnel
                        .accepted_by_type_dir
                        .entry((*push_type, dir.clone()))
                        .or_default() += 1;
                }
                EventKind::DfaPushRejected { proc, dir } => {
                    a.funnel.rejected += 1;
                    *a.funnel
                        .rejected_by_proc_dir
                        .entry((proc.clone(), dir.clone()))
                        .or_default() += 1;
                }
                EventKind::DfaRunEnd {
                    steps: s,
                    termination,
                    ..
                } => {
                    steps.push(*s);
                    *a.funnel
                        .terminations
                        .entry(termination.clone())
                        .or_default() += 1;
                }
                EventKind::ExecSend { from, elems, .. } => {
                    *a.sent_elems_by_proc.entry(from.clone()).or_default() += elems;
                }
                EventKind::ExecRecv {
                    to,
                    elems,
                    wait_nanos,
                    ..
                } => {
                    *a.recv_elems_by_proc.entry(to.clone()).or_default() += elems;
                    waits.push(*wait_nanos);
                }
                EventKind::ExecRetry { wait_nanos, .. } => {
                    a.recovery.recv_retries += 1;
                    a.recovery.retry_wait_nanos += wait_nanos;
                }
                EventKind::ExecCheckpoint { .. } => a.recovery.checkpoints += 1,
                EventKind::ExecResume {
                    resumed,
                    replayed,
                    backoff_nanos,
                    ..
                } => {
                    a.recovery.resumes += 1;
                    a.recovery.resumed_steps += resumed;
                    a.recovery.replayed_steps += replayed;
                    a.recovery.backoff_nanos += backoff_nanos;
                }
                EventKind::ExecPeerLost { .. } => a.recovery.peer_lost += 1,
                EventKind::ExecBlame { dead, .. } => {
                    *a.recovery
                        .convictions_by_proc
                        .entry(dead.clone())
                        .or_default() += 1;
                }
                EventKind::ExecRepartition { reassigned, .. } => {
                    a.recovery.repartitions += 1;
                    a.recovery.elems_reassigned += reassigned;
                }
                EventKind::ExecDegraded { reason, .. } => {
                    *a.recovery
                        .degraded_by_reason
                        .entry(reason.clone())
                        .or_default() += 1;
                }
                _ => {}
            }
        }
        a.steps_to_convergence = ExactSummary::from_values(steps);
        a.recv_wait_nanos = ExactSummary::from_values(waits);
        a
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== event stream ({} records, {} skipped lines) ==",
            self.records, self.skipped_lines
        );
        let f = &self.funnel;
        let _ = writeln!(
            out,
            "push funnel: {} runs, {} attempts -> {} accepted / {} rejected, total dVoC {}",
            f.runs,
            f.attempts(),
            f.accepted,
            f.rejected,
            f.delta_voc_total
        );
        for ((push_type, dir), n) in &f.accepted_by_type_dir {
            let _ = writeln!(out, "  accepted type{push_type} {dir:<2} {n}");
        }
        for ((proc, dir), n) in &f.rejected_by_proc_dir {
            let _ = writeln!(out, "  rejected {proc} {dir:<2} {n}");
        }
        for (kind, n) in &f.terminations {
            let _ = writeln!(out, "  termination {kind} {n}");
        }
        if !self.recovery.is_empty() {
            let r = &self.recovery;
            let _ = writeln!(
                out,
                "recovery funnel: {} recv re-waits, {} checkpoints, {} resumes \
                 (resumed {} / replayed {} steps), {} convictions -> {} repartitions \
                 ({} elems), {} degraded",
                r.recv_retries,
                r.checkpoints,
                r.resumes,
                r.resumed_steps,
                r.replayed_steps,
                r.convictions(),
                r.repartitions,
                r.elems_reassigned,
                r.degraded()
            );
            for (proc, n) in &r.convictions_by_proc {
                let _ = writeln!(out, "  convicted {proc} {n}");
            }
            for (reason, n) in &r.degraded_by_reason {
                let _ = writeln!(out, "  degraded {reason} {n}");
            }
        }
        if let Some(s) = &self.steps_to_convergence {
            out.push_str(&s.render_line("steps_to_convergence"));
        }
        if let Some(s) = &self.recv_wait_nanos {
            out.push_str(&s.render_line("recv_wait_nanos"));
        }
        if !self.sent_elems_by_proc.is_empty() || !self.recv_elems_by_proc.is_empty() {
            let _ = writeln!(out, "per-processor volume (elements):");
            let procs: std::collections::BTreeSet<&String> = self
                .sent_elems_by_proc
                .keys()
                .chain(self.recv_elems_by_proc.keys())
                .collect();
            for proc in procs {
                let _ = writeln!(
                    out,
                    "  {proc} sent={} recv={}",
                    self.sent_elems_by_proc.get(proc).copied().unwrap_or(0),
                    self.recv_elems_by_proc.get(proc).copied().unwrap_or(0)
                );
            }
        }
        out
    }

    /// CSV sections as `(name, content)` pairs — one file per section.
    pub fn csv_sections(&self) -> Vec<(String, String)> {
        let mut sections = Vec::new();
        let mut funnel = String::from("kind,key,dir,count\n");
        for ((push_type, dir), n) in &self.funnel.accepted_by_type_dir {
            let _ = writeln!(funnel, "accepted,type{push_type},{dir},{n}");
        }
        for ((proc, dir), n) in &self.funnel.rejected_by_proc_dir {
            let _ = writeln!(funnel, "rejected,{proc},{dir},{n}");
        }
        sections.push(("push_funnel".to_string(), funnel));
        if !self.recovery.is_empty() {
            let r = &self.recovery;
            let mut rec = String::from("stage,key,count\n");
            let _ = writeln!(rec, "recv_retry,,{}", r.recv_retries);
            let _ = writeln!(rec, "retry_wait_nanos,,{}", r.retry_wait_nanos);
            let _ = writeln!(rec, "checkpoint,,{}", r.checkpoints);
            let _ = writeln!(rec, "resume,,{}", r.resumes);
            let _ = writeln!(rec, "backoff_nanos,,{}", r.backoff_nanos);
            let _ = writeln!(rec, "resumed_steps,,{}", r.resumed_steps);
            let _ = writeln!(rec, "replayed_steps,,{}", r.replayed_steps);
            let _ = writeln!(rec, "peer_lost,,{}", r.peer_lost);
            for (proc, n) in &r.convictions_by_proc {
                let _ = writeln!(rec, "conviction,{proc},{n}");
            }
            let _ = writeln!(rec, "repartition,,{}", r.repartitions);
            let _ = writeln!(rec, "elems_reassigned,,{}", r.elems_reassigned);
            for (reason, n) in &r.degraded_by_reason {
                let _ = writeln!(rec, "degraded,{reason},{n}");
            }
            sections.push(("recovery_funnel".to_string(), rec));
        }
        let mut hist = String::from("metric,count,sum,min,p50,p95,p99,max\n");
        for (label, s) in [
            ("steps_to_convergence", &self.steps_to_convergence),
            ("recv_wait_nanos", &self.recv_wait_nanos),
        ] {
            if let Some(s) = s {
                let _ = writeln!(
                    hist,
                    "{label},{},{},{},{},{},{},{}",
                    s.count, s.sum, s.min, s.p50, s.p95, s.p99, s.max
                );
            }
        }
        sections.push(("histograms".to_string(), hist));
        let mut vol = String::from("proc,sent_elems,recv_elems\n");
        let procs: std::collections::BTreeSet<&String> = self
            .sent_elems_by_proc
            .keys()
            .chain(self.recv_elems_by_proc.keys())
            .collect();
        for proc in procs {
            let _ = writeln!(
                vol,
                "{proc},{},{}",
                self.sent_elems_by_proc.get(proc).copied().unwrap_or(0),
                self.recv_elems_by_proc.get(proc).copied().unwrap_or(0)
            );
        }
        sections.push(("volumes".to_string(), vol));
        sections
    }
}

/// Aggregate view over `results/manifests.jsonl`: per-binary run counts,
/// summed counters, and histogram quantiles interpolated from the stored
/// bucket snapshots ([`HistogramSnapshot::quantile`]).
#[derive(Debug, Default, Clone)]
pub struct ManifestSummary {
    /// Per-bin aggregates, keyed by binary name.
    pub bins: BTreeMap<String, BinSummary>,
    /// Manifests parsed.
    pub manifests: usize,
    /// Unparsable lines.
    pub skipped_lines: usize,
}

/// Aggregates for one binary across its manifest records.
#[derive(Debug, Default, Clone)]
pub struct BinSummary {
    /// Runs recorded.
    pub runs: u64,
    /// Total events emitted across runs.
    pub events_emitted: u64,
    /// Wall times of each run.
    pub wall_nanos: Vec<u64>,
    /// Counters summed across runs.
    pub counters: BTreeMap<String, u64>,
    /// Histograms merged across runs (counts summed; first-seen bounds
    /// win — bounds are compile-time constants per metric name).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl ManifestSummary {
    /// Aggregate one manifest log.
    pub fn from_manifests(log: &ManifestLog) -> ManifestSummary {
        let mut summary = ManifestSummary {
            manifests: log.manifests.len(),
            skipped_lines: log.skipped_lines,
            ..ManifestSummary::default()
        };
        for m in &log.manifests {
            let bin = summary.bins.entry(m.bin.clone()).or_default();
            bin.runs += 1;
            bin.events_emitted += m.events_emitted;
            bin.wall_nanos.push(m.wall_nanos);
            for (name, v) in &m.metrics.counters {
                *bin.counters.entry(name.clone()).or_default() += v;
            }
            for h in &m.metrics.histograms {
                let merged =
                    bin.histograms
                        .entry(h.name.clone())
                        .or_insert_with(|| HistogramSnapshot {
                            name: h.name.clone(),
                            bounds: h.bounds.clone(),
                            counts: vec![0; h.counts.len()],
                            count: 0,
                            sum: 0,
                        });
                if merged.bounds == h.bounds {
                    for (acc, c) in merged.counts.iter_mut().zip(&h.counts) {
                        *acc += c;
                    }
                    merged.count += h.count;
                    merged.sum += h.sum;
                }
            }
        }
        summary
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== manifests ({} records, {} skipped lines) ==",
            self.manifests, self.skipped_lines
        );
        for (bin, s) in &self.bins {
            let _ = writeln!(
                out,
                "{bin}: {} run{}, {} events",
                s.runs,
                if s.runs == 1 { "" } else { "s" },
                s.events_emitted
            );
            if let Some(w) = ExactSummary::from_values(s.wall_nanos.clone()) {
                out.push_str(&w.render_line("wall_nanos"));
            }
            for (name, v) in &s.counters {
                let _ = writeln!(out, "  counter {name} {v}");
            }
            // Derived probe-cache hit rate: hits over total probe
            // evaluations (cached + evaluated). Only meaningful when the
            // bin recorded probe activity at all.
            let hits = s.counters.get("push.probe.cache_hits").copied();
            let evals = s.counters.get("push.probe.evals").copied();
            if let (Some(hits), Some(evals)) = (hits, evals) {
                let lookups = hits + evals;
                if lookups > 0 {
                    let _ = writeln!(
                        out,
                        "  derived push.probe.hit_rate {:.1}% ({hits}/{lookups})",
                        100.0 * hits as f64 / lookups as f64
                    );
                }
            }
            for (name, h) in &s.histograms {
                let q = |p: f64| {
                    h.quantile(p)
                        .map(|v| format!("{v:.1}"))
                        .unwrap_or_else(|| "-".to_string())
                };
                let _ = writeln!(
                    out,
                    "  histogram {name} n={} sum={} p50={} p95={} p99={}",
                    h.count,
                    h.sum,
                    q(0.50),
                    q(0.95),
                    q(0.99)
                );
            }
        }
        out
    }

    /// CSV: one row per (bin, counter) plus one per (bin, histogram).
    pub fn csv(&self) -> String {
        let mut out = String::from("bin,kind,name,count,sum,p50,p95,p99\n");
        for (bin, s) in &self.bins {
            for (name, v) in &s.counters {
                let _ = writeln!(out, "{bin},counter,{name},{v},,,,");
            }
            for (name, h) in &s.histograms {
                let q = |p: f64| h.quantile(p).map(|v| format!("{v:.1}")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{bin},histogram,{name},{},{},{},{},{}",
                    h.count,
                    h.sum,
                    q(0.50),
                    q(0.95),
                    q(0.99)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_obs::{EventRecord, SCHEMA_VERSION};

    fn rec(event: EventKind) -> EventRecord {
        EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: 0,
            event,
        }
    }

    fn sample_log() -> EventLog {
        EventLog {
            records: vec![
                rec(EventKind::DfaRunStart {
                    seed: 1,
                    n: 40,
                    ratio: "1:1:1".into(),
                    plan_len: 8,
                }),
                rec(EventKind::DfaPush {
                    step: 1,
                    proc: "R".into(),
                    dir: "↓".into(),
                    push_type: 1,
                    delta_voc: -10,
                }),
                rec(EventKind::DfaPush {
                    step: 2,
                    proc: "S".into(),
                    dir: "↓".into(),
                    push_type: 1,
                    delta_voc: -4,
                }),
                rec(EventKind::DfaPushRejected {
                    proc: "P".into(),
                    dir: "→".into(),
                }),
                rec(EventKind::DfaRunEnd {
                    steps: 2,
                    termination: "FixedPoint".into(),
                    voc_initial: 100,
                    voc_final: 86,
                    residual_pushes: 0,
                    condensed: true,
                }),
                rec(EventKind::ExecSend {
                    from: "R".into(),
                    to: "S".into(),
                    step: 0,
                    elems: 64,
                }),
                rec(EventKind::ExecRecv {
                    from: "R".into(),
                    to: "S".into(),
                    step: 0,
                    elems: 64,
                    wait_nanos: 500,
                }),
            ],
            skipped_lines: 1,
        }
    }

    #[test]
    fn funnel_counts_accepted_rejected_and_terminations() {
        let a = Analysis::from_events(&sample_log());
        assert_eq!(a.funnel.runs, 1);
        assert_eq!(a.funnel.accepted, 2);
        assert_eq!(a.funnel.rejected, 1);
        assert_eq!(a.funnel.attempts(), 3);
        assert_eq!(a.funnel.delta_voc_total, -14);
        assert_eq!(a.funnel.accepted_by_type_dir[&(1, "↓".to_string())], 2);
        assert_eq!(a.funnel.terminations["FixedPoint"], 1);
        assert_eq!(a.sent_elems_by_proc["R"], 64);
        assert_eq!(a.recv_elems_by_proc["S"], 64);
        assert_eq!(a.recv_wait_nanos.as_ref().unwrap().p50, 500);
    }

    #[test]
    fn exact_summary_nearest_rank_quantiles() {
        let s = ExactSummary::from_values((1..=100).collect()).unwrap();
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!(ExactSummary::from_values(vec![]).is_none());
        let single = ExactSummary::from_values(vec![7]).unwrap();
        assert_eq!((single.p50, single.p99), (7, 7));
    }

    fn recovery_log() -> EventLog {
        EventLog {
            records: vec![
                rec(EventKind::ExecRetry {
                    worker: "R".into(),
                    peer: "S".into(),
                    step: 4,
                    attempt: 1,
                    wait_nanos: 10_000_000,
                }),
                rec(EventKind::ExecCheckpoint {
                    worker: "R".into(),
                    through: 5,
                    cells: 16,
                }),
                rec(EventKind::ExecCheckpoint {
                    worker: "P".into(),
                    through: 5,
                    cells: 8,
                }),
                rec(EventKind::ExecPeerLost {
                    worker: "R".into(),
                    peer: "S".into(),
                    step: 5,
                    detail: "recv timeout".into(),
                }),
                rec(EventKind::ExecBlame {
                    dead: "S".into(),
                    weights: vec![0, 6, 0],
                }),
                rec(EventKind::ExecRepartition {
                    dead: "S".into(),
                    reassigned: 40,
                    survivors: 2,
                }),
                rec(EventKind::ExecResume {
                    attempt: 2,
                    resume_step: 5,
                    resumed: 5,
                    replayed: 11,
                    survivors: 2,
                    backoff_nanos: 0,
                }),
                rec(EventKind::ExecDegraded {
                    survivors: 1,
                    cascade_depth: 2,
                    reason: "sole-survivor".into(),
                    replayed: 3,
                }),
            ],
            skipped_lines: 0,
        }
    }

    #[test]
    fn recovery_funnel_aggregates_all_stages() {
        let a = Analysis::from_events(&recovery_log());
        let r = &a.recovery;
        assert!(!r.is_empty());
        assert_eq!(r.recv_retries, 1);
        assert_eq!(r.retry_wait_nanos, 10_000_000);
        assert_eq!(r.checkpoints, 2);
        assert_eq!(r.peer_lost, 1);
        assert_eq!(r.convictions(), 1);
        assert_eq!(r.convictions_by_proc["S"], 1);
        assert_eq!(r.repartitions, 1);
        assert_eq!(r.elems_reassigned, 40);
        assert_eq!((r.resumes, r.resumed_steps, r.replayed_steps), (1, 5, 11));
        assert_eq!(r.degraded(), 1);
        assert_eq!(r.degraded_by_reason["sole-survivor"], 1);
        let text = a.render_text();
        assert!(text.contains("recovery funnel:"), "{text}");
        assert!(text.contains("convicted S 1"), "{text}");
        assert!(text.contains("degraded sole-survivor 1"), "{text}");
        let sections = a.csv_sections();
        let rec = &sections
            .iter()
            .find(|(name, _)| name == "recovery_funnel")
            .expect("recovery_funnel csv section")
            .1;
        assert!(rec.contains("conviction,S,1"), "{rec}");
        assert!(rec.contains("degraded,sole-survivor,1"), "{rec}");
    }

    #[test]
    fn clean_stream_omits_recovery_funnel() {
        let a = Analysis::from_events(&sample_log());
        assert!(a.recovery.is_empty());
        assert!(!a.render_text().contains("recovery funnel"));
        assert!(a
            .csv_sections()
            .iter()
            .all(|(name, _)| name != "recovery_funnel"));
    }

    #[test]
    fn render_is_deterministic() {
        let log = sample_log();
        let a = Analysis::from_events(&log);
        let b = Analysis::from_events(&log);
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.csv_sections(), b.csv_sections());
    }
}
