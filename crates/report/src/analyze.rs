//! Run analyzer: aggregate reports over event streams and manifest logs.
//!
//! Three views, mirroring the paper's own tables: the push acceptance
//! funnel (how many plan attempts became applied pushes, by type and
//! direction — §VI's push-type taxonomy), convergence/latency summaries
//! with p50/p95/p99, and per-processor communication volume (the VoC the
//! whole search optimizes). Everything aggregates into sorted maps so the
//! rendered output is deterministic for a fixed input stream.

use crate::input::{EventLog, ManifestLog};
use hetmmm_obs::{EventKind, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Exact order statistics over raw `u64` observations (nearest-rank).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactSummary {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
}

impl ExactSummary {
    /// Summarize a value set; `None` when empty.
    pub fn from_values(mut values: Vec<u64>) -> Option<ExactSummary> {
        if values.is_empty() {
            return None;
        }
        values.sort_unstable();
        let rank = |q: f64| -> u64 {
            let idx = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
            values[idx]
        };
        Some(ExactSummary {
            count: values.len() as u64,
            sum: values.iter().sum(),
            min: values[0],
            max: *values.last().unwrap(),
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
        })
    }

    fn render_line(&self, label: &str) -> String {
        format!(
            "  {label:<22} n={} sum={} min={} p50={} p95={} p99={} max={}\n",
            self.count, self.sum, self.min, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// The push acceptance funnel: plan attempts → applied pushes, broken
/// down by push type × direction (accepted) and processor × direction
/// (rejected).
#[derive(Debug, Default, Clone)]
pub struct PushFunnel {
    /// DFA runs seen (`DfaRunStart` events).
    pub runs: u64,
    /// Accepted pushes (`DfaPush`).
    pub accepted: u64,
    /// Rejected plan attempts (`DfaPushRejected`).
    pub rejected: u64,
    /// Accepted counts keyed by `(push_type, direction)`.
    pub accepted_by_type_dir: BTreeMap<(u8, String), u64>,
    /// Rejected counts keyed by `(proc, direction)`.
    pub rejected_by_proc_dir: BTreeMap<(String, String), u64>,
    /// Sum of applied ΔVoC (≤ 0: every accepted push lowers or keeps VoC).
    pub delta_voc_total: i64,
    /// Run terminations by kind (`FixedPoint`, `NeutralCycle`, …).
    pub terminations: BTreeMap<String, u64>,
}

impl PushFunnel {
    /// Total plan attempts (accepted + rejected).
    pub fn attempts(&self) -> u64 {
        self.accepted + self.rejected
    }
}

/// Everything the analyzer extracts from one event stream.
#[derive(Debug, Default, Clone)]
pub struct Analysis {
    /// The push funnel.
    pub funnel: PushFunnel,
    /// Steps-to-convergence over `DfaRunEnd.steps`.
    pub steps_to_convergence: Option<ExactSummary>,
    /// Receive-wait times over `ExecRecv.wait_nanos`.
    pub recv_wait_nanos: Option<ExactSummary>,
    /// Elements sent per processor (`ExecSend.from`).
    pub sent_elems_by_proc: BTreeMap<String, u64>,
    /// Elements received per processor (`ExecRecv.to`).
    pub recv_elems_by_proc: BTreeMap<String, u64>,
    /// Records in the input stream.
    pub records: usize,
    /// Unparsable lines in the input stream.
    pub skipped_lines: usize,
}

impl Analysis {
    /// Aggregate one event stream.
    pub fn from_events(log: &EventLog) -> Analysis {
        let mut a = Analysis {
            records: log.records.len(),
            skipped_lines: log.skipped_lines,
            ..Analysis::default()
        };
        let mut steps = Vec::new();
        let mut waits = Vec::new();
        for record in &log.records {
            match &record.event {
                EventKind::DfaRunStart { .. } => a.funnel.runs += 1,
                EventKind::DfaPush {
                    dir,
                    push_type,
                    delta_voc,
                    ..
                } => {
                    a.funnel.accepted += 1;
                    a.funnel.delta_voc_total += delta_voc;
                    *a.funnel
                        .accepted_by_type_dir
                        .entry((*push_type, dir.clone()))
                        .or_default() += 1;
                }
                EventKind::DfaPushRejected { proc, dir } => {
                    a.funnel.rejected += 1;
                    *a.funnel
                        .rejected_by_proc_dir
                        .entry((proc.clone(), dir.clone()))
                        .or_default() += 1;
                }
                EventKind::DfaRunEnd {
                    steps: s,
                    termination,
                    ..
                } => {
                    steps.push(*s);
                    *a.funnel
                        .terminations
                        .entry(termination.clone())
                        .or_default() += 1;
                }
                EventKind::ExecSend { from, elems, .. } => {
                    *a.sent_elems_by_proc.entry(from.clone()).or_default() += elems;
                }
                EventKind::ExecRecv {
                    to,
                    elems,
                    wait_nanos,
                    ..
                } => {
                    *a.recv_elems_by_proc.entry(to.clone()).or_default() += elems;
                    waits.push(*wait_nanos);
                }
                _ => {}
            }
        }
        a.steps_to_convergence = ExactSummary::from_values(steps);
        a.recv_wait_nanos = ExactSummary::from_values(waits);
        a
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== event stream ({} records, {} skipped lines) ==",
            self.records, self.skipped_lines
        );
        let f = &self.funnel;
        let _ = writeln!(
            out,
            "push funnel: {} runs, {} attempts -> {} accepted / {} rejected, total dVoC {}",
            f.runs,
            f.attempts(),
            f.accepted,
            f.rejected,
            f.delta_voc_total
        );
        for ((push_type, dir), n) in &f.accepted_by_type_dir {
            let _ = writeln!(out, "  accepted type{push_type} {dir:<2} {n}");
        }
        for ((proc, dir), n) in &f.rejected_by_proc_dir {
            let _ = writeln!(out, "  rejected {proc} {dir:<2} {n}");
        }
        for (kind, n) in &f.terminations {
            let _ = writeln!(out, "  termination {kind} {n}");
        }
        if let Some(s) = &self.steps_to_convergence {
            out.push_str(&s.render_line("steps_to_convergence"));
        }
        if let Some(s) = &self.recv_wait_nanos {
            out.push_str(&s.render_line("recv_wait_nanos"));
        }
        if !self.sent_elems_by_proc.is_empty() || !self.recv_elems_by_proc.is_empty() {
            let _ = writeln!(out, "per-processor volume (elements):");
            let procs: std::collections::BTreeSet<&String> = self
                .sent_elems_by_proc
                .keys()
                .chain(self.recv_elems_by_proc.keys())
                .collect();
            for proc in procs {
                let _ = writeln!(
                    out,
                    "  {proc} sent={} recv={}",
                    self.sent_elems_by_proc.get(proc).copied().unwrap_or(0),
                    self.recv_elems_by_proc.get(proc).copied().unwrap_or(0)
                );
            }
        }
        out
    }

    /// CSV sections as `(name, content)` pairs — one file per section.
    pub fn csv_sections(&self) -> Vec<(String, String)> {
        let mut sections = Vec::new();
        let mut funnel = String::from("kind,key,dir,count\n");
        for ((push_type, dir), n) in &self.funnel.accepted_by_type_dir {
            let _ = writeln!(funnel, "accepted,type{push_type},{dir},{n}");
        }
        for ((proc, dir), n) in &self.funnel.rejected_by_proc_dir {
            let _ = writeln!(funnel, "rejected,{proc},{dir},{n}");
        }
        sections.push(("push_funnel".to_string(), funnel));
        let mut hist = String::from("metric,count,sum,min,p50,p95,p99,max\n");
        for (label, s) in [
            ("steps_to_convergence", &self.steps_to_convergence),
            ("recv_wait_nanos", &self.recv_wait_nanos),
        ] {
            if let Some(s) = s {
                let _ = writeln!(
                    hist,
                    "{label},{},{},{},{},{},{},{}",
                    s.count, s.sum, s.min, s.p50, s.p95, s.p99, s.max
                );
            }
        }
        sections.push(("histograms".to_string(), hist));
        let mut vol = String::from("proc,sent_elems,recv_elems\n");
        let procs: std::collections::BTreeSet<&String> = self
            .sent_elems_by_proc
            .keys()
            .chain(self.recv_elems_by_proc.keys())
            .collect();
        for proc in procs {
            let _ = writeln!(
                vol,
                "{proc},{},{}",
                self.sent_elems_by_proc.get(proc).copied().unwrap_or(0),
                self.recv_elems_by_proc.get(proc).copied().unwrap_or(0)
            );
        }
        sections.push(("volumes".to_string(), vol));
        sections
    }
}

/// Aggregate view over `results/manifests.jsonl`: per-binary run counts,
/// summed counters, and histogram quantiles interpolated from the stored
/// bucket snapshots ([`HistogramSnapshot::quantile`]).
#[derive(Debug, Default, Clone)]
pub struct ManifestSummary {
    /// Per-bin aggregates, keyed by binary name.
    pub bins: BTreeMap<String, BinSummary>,
    /// Manifests parsed.
    pub manifests: usize,
    /// Unparsable lines.
    pub skipped_lines: usize,
}

/// Aggregates for one binary across its manifest records.
#[derive(Debug, Default, Clone)]
pub struct BinSummary {
    /// Runs recorded.
    pub runs: u64,
    /// Total events emitted across runs.
    pub events_emitted: u64,
    /// Wall times of each run.
    pub wall_nanos: Vec<u64>,
    /// Counters summed across runs.
    pub counters: BTreeMap<String, u64>,
    /// Histograms merged across runs (counts summed; first-seen bounds
    /// win — bounds are compile-time constants per metric name).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl ManifestSummary {
    /// Aggregate one manifest log.
    pub fn from_manifests(log: &ManifestLog) -> ManifestSummary {
        let mut summary = ManifestSummary {
            manifests: log.manifests.len(),
            skipped_lines: log.skipped_lines,
            ..ManifestSummary::default()
        };
        for m in &log.manifests {
            let bin = summary.bins.entry(m.bin.clone()).or_default();
            bin.runs += 1;
            bin.events_emitted += m.events_emitted;
            bin.wall_nanos.push(m.wall_nanos);
            for (name, v) in &m.metrics.counters {
                *bin.counters.entry(name.clone()).or_default() += v;
            }
            for h in &m.metrics.histograms {
                let merged =
                    bin.histograms
                        .entry(h.name.clone())
                        .or_insert_with(|| HistogramSnapshot {
                            name: h.name.clone(),
                            bounds: h.bounds.clone(),
                            counts: vec![0; h.counts.len()],
                            count: 0,
                            sum: 0,
                        });
                if merged.bounds == h.bounds {
                    for (acc, c) in merged.counts.iter_mut().zip(&h.counts) {
                        *acc += c;
                    }
                    merged.count += h.count;
                    merged.sum += h.sum;
                }
            }
        }
        summary
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== manifests ({} records, {} skipped lines) ==",
            self.manifests, self.skipped_lines
        );
        for (bin, s) in &self.bins {
            let _ = writeln!(
                out,
                "{bin}: {} run{}, {} events",
                s.runs,
                if s.runs == 1 { "" } else { "s" },
                s.events_emitted
            );
            if let Some(w) = ExactSummary::from_values(s.wall_nanos.clone()) {
                out.push_str(&w.render_line("wall_nanos"));
            }
            for (name, v) in &s.counters {
                let _ = writeln!(out, "  counter {name} {v}");
            }
            for (name, h) in &s.histograms {
                let q = |p: f64| {
                    h.quantile(p)
                        .map(|v| format!("{v:.1}"))
                        .unwrap_or_else(|| "-".to_string())
                };
                let _ = writeln!(
                    out,
                    "  histogram {name} n={} sum={} p50={} p95={} p99={}",
                    h.count,
                    h.sum,
                    q(0.50),
                    q(0.95),
                    q(0.99)
                );
            }
        }
        out
    }

    /// CSV: one row per (bin, counter) plus one per (bin, histogram).
    pub fn csv(&self) -> String {
        let mut out = String::from("bin,kind,name,count,sum,p50,p95,p99\n");
        for (bin, s) in &self.bins {
            for (name, v) in &s.counters {
                let _ = writeln!(out, "{bin},counter,{name},{v},,,,");
            }
            for (name, h) in &s.histograms {
                let q = |p: f64| h.quantile(p).map(|v| format!("{v:.1}")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{bin},histogram,{name},{},{},{},{},{}",
                    h.count,
                    h.sum,
                    q(0.50),
                    q(0.95),
                    q(0.99)
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_obs::{EventRecord, SCHEMA_VERSION};

    fn rec(event: EventKind) -> EventRecord {
        EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: 0,
            event,
        }
    }

    fn sample_log() -> EventLog {
        EventLog {
            records: vec![
                rec(EventKind::DfaRunStart {
                    seed: 1,
                    n: 40,
                    ratio: "1:1:1".into(),
                    plan_len: 8,
                }),
                rec(EventKind::DfaPush {
                    step: 1,
                    proc: "R".into(),
                    dir: "↓".into(),
                    push_type: 1,
                    delta_voc: -10,
                }),
                rec(EventKind::DfaPush {
                    step: 2,
                    proc: "S".into(),
                    dir: "↓".into(),
                    push_type: 1,
                    delta_voc: -4,
                }),
                rec(EventKind::DfaPushRejected {
                    proc: "P".into(),
                    dir: "→".into(),
                }),
                rec(EventKind::DfaRunEnd {
                    steps: 2,
                    termination: "FixedPoint".into(),
                    voc_initial: 100,
                    voc_final: 86,
                    residual_pushes: 0,
                    condensed: true,
                }),
                rec(EventKind::ExecSend {
                    from: "R".into(),
                    to: "S".into(),
                    step: 0,
                    elems: 64,
                }),
                rec(EventKind::ExecRecv {
                    from: "R".into(),
                    to: "S".into(),
                    step: 0,
                    elems: 64,
                    wait_nanos: 500,
                }),
            ],
            skipped_lines: 1,
        }
    }

    #[test]
    fn funnel_counts_accepted_rejected_and_terminations() {
        let a = Analysis::from_events(&sample_log());
        assert_eq!(a.funnel.runs, 1);
        assert_eq!(a.funnel.accepted, 2);
        assert_eq!(a.funnel.rejected, 1);
        assert_eq!(a.funnel.attempts(), 3);
        assert_eq!(a.funnel.delta_voc_total, -14);
        assert_eq!(a.funnel.accepted_by_type_dir[&(1, "↓".to_string())], 2);
        assert_eq!(a.funnel.terminations["FixedPoint"], 1);
        assert_eq!(a.sent_elems_by_proc["R"], 64);
        assert_eq!(a.recv_elems_by_proc["S"], 64);
        assert_eq!(a.recv_wait_nanos.as_ref().unwrap().p50, 500);
    }

    #[test]
    fn exact_summary_nearest_rank_quantiles() {
        let s = ExactSummary::from_values((1..=100).collect()).unwrap();
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!(ExactSummary::from_values(vec![]).is_none());
        let single = ExactSummary::from_values(vec![7]).unwrap();
        assert_eq!((single.p50, single.p99), (7, 7));
    }

    #[test]
    fn render_is_deterministic() {
        let log = sample_log();
        let a = Analysis::from_events(&log);
        let b = Analysis::from_events(&log);
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.csv_sections(), b.csv_sections());
    }
}
