//! The self-contained census dashboard: one static `dashboard.html` with
//! zero external dependencies — no scripts, no fonts, no network — so a
//! nightly CI artifact opens identically on any machine, forever.
//!
//! Panels (each degrades to a "no data" note when its input is absent):
//!
//! 1. **Trend sparklines** — one inline-SVG polyline per perf-gate
//!    workload from the [`RunStore`] history series, drift-flagged red
//!    when a [`TrendReport`] marks the workload;
//! 2. **Winner map** — the paper's central artifact: the optimal-shape
//!    census over the (P_r, R_r) ratio plane as a heat grid, one grid per
//!    (topology, algorithm) pair, parsed from
//!    `results/optimal_shape_map.csv` ([`WinnerMap`]);
//! 3. **Timeline** — per-processor Gantt bars from
//!    [`Timeline`](crate::timeline::Timeline) segments;
//! 4. **Push funnel** — plan attempts → accepted/rejected bars from
//!    [`Analysis`](crate::analyze::Analysis);
//! 5. **Triage verdict** — the [`TriageReport`](crate::triage::TriageReport)
//!    headline and per-workload explanations;
//! 6. **Optimality gap** — reserved: renders a placeholder until the
//!    Red-Blue Pebbling lower bound (ROADMAP item 3) lands, at which
//!    point measured-vs-bound ratios drop straight into this panel.
//!
//! Rendering is a pure function of the inputs: no clock, no randomness,
//! sorted-map iteration, and fixed-precision float formatting — the
//! golden test asserts byte-identical HTML for identical `FakeClock`
//! inputs. The "as of" stamp is the newest history entry's `git_rev`,
//! *read from the inputs*, never computed at render time.

// hetmmm-lint: ack-events(*) panels render pre-digested Analysis/Timeline/TrendReport values; the dashboard never decodes raw events
use crate::analyze::Analysis;
use crate::store::RunStore;
use crate::timeline::Timeline;
use crate::trend::TrendReport;
use crate::triage::TriageReport;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One row of the committed optimal-shape census CSV.
#[derive(Clone, Debug, PartialEq)]
pub struct WinnerCell {
    /// P's relative speed.
    pub p_r: u64,
    /// R's relative speed.
    pub r_r: u64,
    /// Winning candidate code (`SC`, `RC`, `SR`, `BR`, `LR`, `TR`).
    pub winner: String,
    /// Predicted execution seconds for the winner.
    pub predicted_s: f64,
}

/// The parsed winner map: cells grouped by `(topology, algorithm)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WinnerMap {
    /// `(topology, algorithm)` → cells, in CSV order.
    pub grids: BTreeMap<(String, String), Vec<WinnerCell>>,
    /// CSV lines skipped (malformed or wrong column count).
    pub skipped_lines: usize,
}

impl WinnerMap {
    /// Parse the committed census CSV
    /// (`topology,algorithm,p_r,r_r,winner,predicted_s`), leniently: bad
    /// lines are counted, never fatal.
    pub fn parse_csv(text: &str) -> WinnerMap {
        let mut map = WinnerMap::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (i == 0 && line.starts_with("topology,")) {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            let parsed = (|| -> Option<(String, String, WinnerCell)> {
                if fields.len() != 6 {
                    return None;
                }
                Some((
                    fields[0].to_string(),
                    fields[1].to_string(),
                    WinnerCell {
                        p_r: fields[2].parse().ok()?,
                        r_r: fields[3].parse().ok()?,
                        winner: fields[4].to_string(),
                        predicted_s: fields[5].parse().ok()?,
                    },
                ))
            })();
            match parsed {
                Some((topology, algorithm, cell)) => {
                    map.grids
                        .entry((topology, algorithm))
                        .or_default()
                        .push(cell);
                }
                None => map.skipped_lines += 1,
            }
        }
        map
    }

    /// Total cells across all grids.
    pub fn cells(&self) -> usize {
        self.grids.values().map(Vec::len).sum()
    }
}

/// Everything the dashboard can draw. Every field except the store is
/// optional; missing inputs render as explicit "no data" notes.
#[derive(Default)]
pub struct DashboardInputs {
    /// History series and manifest inventory.
    pub store: RunStore,
    /// Drift verdicts used to flag sparklines (usually
    /// [`crate::trend::analyze`] over `store.history`).
    pub trend: Option<TrendReport>,
    /// Per-processor execution timeline.
    pub timeline: Option<Timeline>,
    /// Push-funnel aggregation.
    pub analysis: Option<Analysis>,
    /// The census winner map.
    pub winners: Option<WinnerMap>,
    /// The triage verdict.
    pub triage: Option<TriageReport>,
}

/// Fixed fill colors per candidate code (the paper's six shapes), keyed
/// so every build renders the same bytes. Unknown codes get gray.
fn winner_color(code: &str) -> &'static str {
    match code {
        "SC" => "#4e79a7",
        "RC" => "#f28e2b",
        "SR" => "#76b7b2",
        "BR" => "#e15759",
        "LR" => "#59a14f",
        "TR" => "#edc948",
        _ => "#bab0ab",
    }
}

/// Fixed fill colors per execution segment kind.
fn segment_color(kind: &str) -> &'static str {
    match kind {
        "compute" => "#59a14f",
        "send" => "#4e79a7",
        "recv-wait" => "#f28e2b",
        "checkpoint" => "#b07aa1",
        "blocked" => "#e15759",
        _ => "#bab0ab",
    }
}

/// Minimal HTML escaping for text from input files.
fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

fn panel(out: &mut String, title: &str, body: &str) {
    let _ = writeln!(
        out,
        "<section class=\"panel\"><h2>{}</h2>{}</section>",
        html_escape(title),
        body
    );
}

fn no_data(what: &str) -> String {
    format!("<p class=\"nodata\">no data: {}</p>", html_escape(what))
}

/// One sparkline: an inline SVG polyline over the series points, scaled
/// to the panel box with 1-decimal fixed coordinates.
fn sparkline_svg(points: &[u64], drifted: bool) -> String {
    const W: f64 = 240.0;
    const H: f64 = 40.0;
    const PAD: f64 = 3.0;
    if points.is_empty() {
        return String::new();
    }
    let min = *points.iter().min().unwrap_or(&0);
    let max = *points.iter().max().unwrap_or(&0);
    let span = (max - min).max(1) as f64;
    let x_of = |i: usize| -> f64 {
        if points.len() == 1 {
            W / 2.0
        } else {
            PAD + (W - 2.0 * PAD) * i as f64 / (points.len() - 1) as f64
        }
    };
    let y_of = |v: u64| -> f64 { H - PAD - (H - 2.0 * PAD) * (v - min) as f64 / span };
    let stroke = if drifted { "#e15759" } else { "#4e79a7" };
    let mut svg =
        format!("<svg class=\"spark\" width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\">");
    if points.len() == 1 {
        let _ = write!(
            svg,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2\" fill=\"{stroke}\"/>",
            x_of(0),
            y_of(points[0])
        );
    } else {
        let coords: Vec<String> = points
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{:.1},{:.1}", x_of(i), y_of(*v)))
            .collect();
        let _ = write!(
            svg,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"1.5\"/>",
            coords.join(" ")
        );
        // Emphasize the newest point: that is what drifted (or not).
        let last = points.len() - 1;
        let _ = write!(
            svg,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\" fill=\"{stroke}\"/>",
            x_of(last),
            y_of(points[last])
        );
    }
    svg.push_str("</svg>");
    svg
}

fn trend_panel(inputs: &DashboardInputs) -> String {
    if inputs.store.workloads.is_empty() {
        return no_data("results/bench_history.jsonl (run perf_gate to append history)");
    }
    let drifted_of = |name: &str| -> Option<&crate::trend::WorkloadTrend> {
        inputs
            .trend
            .as_ref()
            .and_then(|t| t.workloads.iter().find(|w| w.name == name))
    };
    let mut body = String::from("<table class=\"trend\">");
    body.push_str(
        "<tr><th>workload</th><th>history</th><th>latest ns</th><th>ratio</th><th></th></tr>",
    );
    for (name, series) in &inputs.store.workloads {
        let medians: Vec<u64> = series.points.iter().map(|p| p.median_nanos).collect();
        let verdict = drifted_of(name);
        let drifted = verdict.map(|w| w.drifted).unwrap_or(false);
        let ratio = verdict
            .map(|w| format!("{:.2}x", w.ratio))
            .unwrap_or_else(|| "-".to_string());
        let flag = if drifted {
            "<span class=\"drift\">DRIFT</span>"
        } else {
            "<span class=\"ok\">ok</span>"
        };
        let _ = write!(
            body,
            "<tr><td>{}</td><td>{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td>{}</td></tr>",
            html_escape(name),
            sparkline_svg(&medians, drifted),
            series.latest_nanos().unwrap_or(0),
            ratio,
            flag
        );
    }
    body.push_str("</table>");
    body
}

fn winner_panel(winners: Option<&WinnerMap>) -> String {
    let Some(map) = winners else {
        return no_data("results/optimal_shape_map.csv (run table_optimal_shapes)");
    };
    if map.grids.is_empty() {
        return no_data("winner map CSV parsed to zero cells");
    }
    let mut body = String::new();
    // Shared legend over every code that actually appears.
    let mut codes: Vec<&str> = map
        .grids
        .values()
        .flatten()
        .map(|c| c.winner.as_str())
        .collect();
    codes.sort_unstable();
    codes.dedup();
    body.push_str("<p class=\"legend\">");
    for code in &codes {
        let _ = write!(
            body,
            "<span class=\"chip\" style=\"background:{}\"></span>{} ",
            winner_color(code),
            html_escape(code)
        );
    }
    body.push_str("</p>");
    for ((topology, algorithm), cells) in &map.grids {
        let mut p_axis: Vec<u64> = cells.iter().map(|c| c.p_r).collect();
        p_axis.sort_unstable();
        p_axis.dedup();
        let mut r_axis: Vec<u64> = cells.iter().map(|c| c.r_r).collect();
        r_axis.sort_unstable();
        r_axis.dedup();
        let cell_of = |p: u64, r: u64| cells.iter().find(|c| c.p_r == p && c.r_r == r);
        let _ = write!(
            body,
            "<h3>{} / {}</h3><table class=\"heat\"><tr><th>P_r \\ R_r</th>",
            html_escape(topology),
            html_escape(algorithm)
        );
        for r in &r_axis {
            let _ = write!(body, "<th>{r}</th>");
        }
        body.push_str("</tr>");
        for p in &p_axis {
            let _ = write!(body, "<tr><th>{p}</th>");
            for r in &r_axis {
                match cell_of(*p, *r) {
                    Some(cell) => {
                        let _ = write!(
                            body,
                            "<td class=\"cell\" style=\"background:{}\" \
                             title=\"P_r={p} R_r={r} winner={} predicted={:.6}s\">{}</td>",
                            winner_color(&cell.winner),
                            html_escape(&cell.winner),
                            cell.predicted_s,
                            html_escape(&cell.winner)
                        );
                    }
                    None => body.push_str("<td class=\"cell empty\"></td>"),
                }
            }
            body.push_str("</tr>");
        }
        body.push_str("</table>");
    }
    body
}

fn timeline_panel(timeline: Option<&Timeline>) -> String {
    let Some(tl) = timeline else {
        return no_data("ExecSegment event stream (run exec_trace)");
    };
    if tl.is_empty() {
        return no_data("event stream carried no ExecSegment events");
    }
    const W: f64 = 760.0;
    const ROW: f64 = 22.0;
    const LABEL: f64 = 40.0;
    let first = tl.segments.iter().map(|s| s.start_nanos).min().unwrap_or(0);
    let makespan = tl.makespan_nanos().max(1) as f64;
    let mut workers: Vec<&String> = tl.segments.iter().map(|s| &s.worker).collect();
    workers.sort();
    workers.dedup();
    let h = ROW * workers.len() as f64;
    let mut body = format!(
        "<svg class=\"gantt\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">",
        W + LABEL,
        h,
        W + LABEL,
        h
    );
    for (row, worker) in workers.iter().enumerate() {
        let y = row as f64 * ROW;
        let _ = write!(
            body,
            "<text x=\"0\" y=\"{:.1}\" font-size=\"12\">{}</text>",
            y + ROW * 0.7,
            html_escape(worker)
        );
        for seg in tl.segments.iter().filter(|s| &s.worker == *worker) {
            let x = LABEL + W * (seg.start_nanos - first) as f64 / makespan;
            let w = (W * seg.nanos() as f64 / makespan).max(0.5);
            let _ = write!(
                body,
                "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                 fill=\"{}\"><title>{} {} step {} [{} - {}] ns</title></rect>",
                x,
                y + 2.0,
                w,
                ROW - 6.0,
                segment_color(&seg.kind),
                html_escape(&seg.kind),
                html_escape(&seg.peer),
                seg.step,
                seg.start_nanos,
                seg.end_nanos
            );
        }
    }
    body.push_str("</svg>");
    let _ = write!(
        body,
        "<p>{} segments, makespan {} ns</p>",
        tl.segments.len(),
        tl.makespan_nanos()
    );
    body
}

fn funnel_panel(analysis: Option<&Analysis>) -> String {
    let Some(a) = analysis else {
        return no_data("DFA event stream (run fig5_archetype_census or fig7_example_run)");
    };
    let f = &a.funnel;
    if f.attempts() == 0 && f.runs == 0 {
        return no_data("event stream carried no push-funnel events");
    }
    let max = f.attempts().max(f.runs).max(1) as f64;
    let bar = |label: &str, value: u64, color: &str| -> String {
        let w = 100.0 * value as f64 / max;
        format!(
            "<div class=\"bar\"><span class=\"barlabel\">{}</span>\
             <span class=\"barfill\" style=\"width:{:.1}%;background:{}\"></span>\
             <span class=\"barnum\">{}</span></div>",
            html_escape(label),
            w,
            color,
            value
        )
    };
    let mut body = String::new();
    body.push_str(&bar("runs", f.runs, "#bab0ab"));
    body.push_str(&bar("attempts", f.attempts(), "#4e79a7"));
    body.push_str(&bar("accepted", f.accepted, "#59a14f"));
    body.push_str(&bar("rejected", f.rejected, "#e15759"));
    let _ = write!(body, "<p>total dVoC {}</p>", f.delta_voc_total);
    body
}

fn triage_panel(triage: Option<&TriageReport>) -> String {
    let Some(t) = triage else {
        return no_data("triage report (run bench_trend with event streams)");
    };
    let mut body = format!(
        "<p class=\"{}\">{}</p>",
        if t.drift { "drift" } else { "ok" },
        html_escape(&t.headline)
    );
    if !t.workloads.is_empty() {
        body.push_str("<ul>");
        for w in &t.workloads {
            let _ = write!(
                body,
                "<li><b>{}</b>: {}</li>",
                html_escape(&w.workload),
                html_escape(&w.verdict)
            );
        }
        body.push_str("</ul>");
    }
    body
}

/// Render the full dashboard HTML. Pure: identical inputs produce
/// byte-identical output.
pub fn render_dashboard(inputs: &DashboardInputs) -> String {
    let rev = inputs.store.latest_git_rev().unwrap_or("unknown");
    let mut out = String::from(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>hetmmm census dashboard</title>\n<style>\n\
         body{font-family:system-ui,sans-serif;margin:1.5em;background:#fafafa;color:#222}\n\
         .panel{background:#fff;border:1px solid #ddd;border-radius:6px;\
         padding:1em 1.2em;margin-bottom:1.2em}\n\
         h1{font-size:1.3em}h2{font-size:1.05em;border-bottom:1px solid #eee;\
         padding-bottom:.3em}h3{font-size:.95em}\n\
         .nodata{color:#888;font-style:italic}\n\
         .drift{color:#e15759;font-weight:bold}.ok{color:#59a14f}\n\
         table{border-collapse:collapse}td,th{padding:2px 8px;font-size:.85em}\n\
         td.num{text-align:right;font-variant-numeric:tabular-nums}\n\
         table.heat td.cell{width:2.2em;text-align:center;color:#fff;\
         font-size:.7em;border:1px solid #fff}\n\
         table.heat td.empty{background:#eee}\n\
         .chip{display:inline-block;width:.9em;height:.9em;margin:0 .3em 0 .8em;\
         border-radius:2px;vertical-align:middle}\n\
         .bar{display:flex;align-items:center;margin:2px 0}\n\
         .barlabel{width:6em;font-size:.85em}\n\
         .barfill{display:inline-block;height:.9em;border-radius:2px}\n\
         .barnum{margin-left:.5em;font-size:.85em}\n\
         .spark{vertical-align:middle}\n\
         </style>\n</head>\n<body>\n",
    );
    let _ = write!(
        out,
        "<h1>hetmmm census dashboard</h1>\n<p>as of rev {} \
         ({} history entries, {} manifest runs, {} skipped input lines)</p>\n",
        html_escape(rev),
        inputs.store.history.len(),
        inputs.store.total_runs(),
        inputs.store.skipped_lines
    );
    panel(&mut out, "Bench trend", &trend_panel(inputs));
    panel(
        &mut out,
        "Optimal-shape winner map",
        &winner_panel(inputs.winners.as_ref()),
    );
    panel(
        &mut out,
        "Execution timeline",
        &timeline_panel(inputs.timeline.as_ref()),
    );
    panel(
        &mut out,
        "Push funnel",
        &funnel_panel(inputs.analysis.as_ref()),
    );
    panel(
        &mut out,
        "Regression triage",
        &triage_panel(inputs.triage.as_ref()),
    );
    panel(
        &mut out,
        "Optimality gap",
        "<p class=\"nodata\">reserved: measured makespan vs the Red-Blue Pebbling \
         I/O lower bound lands here (ROADMAP item 3)</p>",
    );
    out.push_str("</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::EventLog;
    use crate::trend::analyze;
    use hetmmm_obs::{EventKind, EventRecord, SCHEMA_VERSION};

    fn history(medians: &[u64]) -> String {
        medians
            .iter()
            .enumerate()
            .map(|(i, m)| {
                format!(
                    "{{\"v\":1,\"git_rev\":\"rev{i}\",\"unix_secs\":{i},\"k\":3,\
                     \"medians\":[[\"w\",{m}]],\"counters\":[]}}"
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn seg(worker: &str, kind: &str, start: u64, end: u64) -> EventRecord {
        EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: start,
            event: EventKind::ExecSegment {
                worker: worker.into(),
                kind: kind.into(),
                peer: String::new(),
                step: 0,
                start_nanos: start,
                end_nanos: end,
            },
        }
    }

    fn full_inputs() -> DashboardInputs {
        let mut store = RunStore::default();
        store.ingest_history_str(&history(&[100, 100, 100, 250]));
        let trend = analyze(&store.history, 10, 1.5);
        let triage = crate::triage::triage(&trend, None, None);
        let records = vec![
            seg("P", "compute", 0, 40),
            seg("R", "send", 0, 10),
            seg("R", "compute", 10, 50),
        ];
        let timeline = Timeline::from_events(&records);
        let analysis = Analysis::from_events(&EventLog {
            records: vec![EventRecord {
                v: SCHEMA_VERSION,
                ts_nanos: 0,
                event: EventKind::DfaPush {
                    step: 1,
                    proc: "R".into(),
                    dir: "d".into(),
                    push_type: 1,
                    delta_voc: -4,
                },
            }],
            skipped_lines: 0,
        });
        let winners = WinnerMap::parse_csv(
            "topology,algorithm,p_r,r_r,winner,predicted_s\n\
             full,SCB,12,1,SC,0.000903\n\
             full,SCB,12,2,BR,0.000979\n\
             full,SCB,6,1,SC,0.000800\n",
        );
        DashboardInputs {
            store,
            trend: Some(trend),
            timeline: Some(timeline),
            analysis: Some(analysis),
            winners: Some(winners),
            triage: Some(triage),
        }
    }

    #[test]
    fn winner_map_parses_header_rows_and_counts_bad_lines() {
        let map = WinnerMap::parse_csv(
            "topology,algorithm,p_r,r_r,winner,predicted_s\n\
             full,SCB,12,1,SC,0.000903\n\
             broken,row\n\
             ring,RCB,3,2,TR,0.5\n",
        );
        assert_eq!(map.cells(), 2);
        assert_eq!(map.skipped_lines, 1);
        let cells = &map.grids[&("full".to_string(), "SCB".to_string())];
        assert_eq!(cells[0].winner, "SC");
        assert_eq!(cells[0].p_r, 12);
    }

    #[test]
    fn all_panels_render_with_full_inputs() {
        let html = render_dashboard(&full_inputs());
        for needle in [
            "Bench trend",
            "Optimal-shape winner map",
            "Execution timeline",
            "Push funnel",
            "Regression triage",
            "Optimality gap",
            "<polyline",
            "DRIFT",
            "class=\"heat\"",
            "class=\"gantt\"",
            "accepted",
            "triage:",
            "Red-Blue Pebbling",
            "as of rev rev3",
        ] {
            assert!(html.contains(needle), "missing {needle:?}");
        }
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn empty_inputs_render_no_data_notes_not_errors() {
        let html = render_dashboard(&DashboardInputs::default());
        assert!(html.contains("as of rev unknown"), "{}", &html[..200]);
        assert_eq!(html.matches("class=\"nodata\"").count(), 6);
    }

    #[test]
    fn rendering_is_byte_identical_for_identical_inputs() {
        let a = render_dashboard(&full_inputs());
        let b = render_dashboard(&full_inputs());
        assert_eq!(a, b);
    }

    #[test]
    fn sparkline_handles_flat_and_single_series() {
        // Flat series: span clamps to 1, no division by zero.
        let flat = sparkline_svg(&[5, 5, 5], false);
        assert!(flat.contains("<polyline"), "{flat}");
        let single = sparkline_svg(&[5], false);
        assert!(single.contains("<circle"), "{single}");
        assert_eq!(sparkline_svg(&[], false), "");
    }
}
