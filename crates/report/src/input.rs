//! Lenient JSONL loaders for event and manifest streams.
//!
//! Streams on disk can end mid-line (a run was killed, a sink was never
//! flushed) or mix schema versions across reruns. The loaders here skip
//! anything unparsable and *count* it, so reports can state how much of
//! the input they actually saw instead of dying on line 10,000.

use hetmmm_obs::{EventRecord, RunManifest};
use std::io;
use std::path::Path;

/// A parsed event stream (one [`EventRecord`] per good JSONL line).
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    /// Records in stream order.
    pub records: Vec<EventRecord>,
    /// Lines that failed to parse (truncation, corruption, alien schema).
    pub skipped_lines: usize,
}

impl EventLog {
    /// Parse from in-memory JSONL text.
    pub fn parse_str(text: &str) -> EventLog {
        let mut log = EventLog::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match serde_json::from_str::<EventRecord>(line) {
                Ok(record) => log.records.push(record),
                Err(_) => log.skipped_lines += 1,
            }
        }
        log
    }

    /// Load from a JSONL file.
    pub fn read_path(path: impl AsRef<Path>) -> io::Result<EventLog> {
        Ok(EventLog::parse_str(&std::fs::read_to_string(path)?))
    }
}

/// A parsed manifest stream (one [`RunManifest`] per good JSONL line).
#[derive(Debug, Default, Clone)]
pub struct ManifestLog {
    /// Manifests in stream order.
    pub manifests: Vec<RunManifest>,
    /// Lines that failed to parse.
    pub skipped_lines: usize,
}

impl ManifestLog {
    /// Parse from in-memory JSONL text.
    pub fn parse_str(text: &str) -> ManifestLog {
        let mut log = ManifestLog::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match serde_json::from_str::<RunManifest>(line) {
                Ok(m) => log.manifests.push(m),
                Err(_) => log.skipped_lines += 1,
            }
        }
        log
    }

    /// Load from a JSONL file.
    pub fn read_path(path: impl AsRef<Path>) -> io::Result<ManifestLog> {
        Ok(ManifestLog::parse_str(&std::fs::read_to_string(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_obs::{EventKind, MetricsSnapshot, MANIFEST_VERSION, SCHEMA_VERSION};

    fn event_line(name: &str) -> String {
        serde_json::to_string(&EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: 1,
            event: EventKind::Message {
                target: "t".into(),
                text: name.into(),
            },
        })
        .unwrap()
    }

    #[test]
    fn good_lines_parse_and_bad_lines_are_counted() {
        let text = format!(
            "{}\n{{\"v\":2,\"ts_nanos\":3,\"event\"\n\n{}\nnot json\n",
            event_line("a"),
            event_line("b")
        );
        let log = EventLog::parse_str(&text);
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.skipped_lines, 2, "truncated + garbage line");
    }

    #[test]
    fn manifest_log_survives_truncation() {
        let m = RunManifest {
            v: MANIFEST_VERSION,
            bin: "b".into(),
            args: vec![],
            seed: None,
            git_rev: "r".into(),
            started_unix_ms: 0,
            wall_nanos: 0,
            events_emitted: 0,
            metrics: MetricsSnapshot::default(),
        };
        let good = serde_json::to_string(&m).unwrap();
        let text = format!("{good}\n{}\n", &good[..good.len() / 2]);
        let log = ManifestLog::parse_str(&text);
        assert_eq!(log.manifests.len(), 1);
        assert_eq!(log.skipped_lines, 1);
    }
}
