//! The unified run store: one indexed, in-memory model over every
//! telemetry artifact the workspace produces.
//!
//! PR after PR the evidence scattered: `results/manifests.jsonl` (one
//! [`RunManifest`](hetmmm_obs::RunManifest) per instrumented run),
//! `results/bench_history.jsonl` (one [`TrendEntry`] per perf-gate run),
//! and ad-hoc event JSONL streams per census or trace job. Each consumer
//! parsed its own slice. The [`RunStore`] joins them: manifests index by
//! `(git_rev, binary, seed)`, history flattens into per-workload series,
//! and event streams register under caller-chosen labels — so the triage
//! engine ([`crate::triage`]) and the dashboard ([`crate::dashboard`])
//! read one coherent object instead of five files.
//!
//! Ingestion is lenient everywhere, like [`crate::trend::parse_history`]:
//! unparsable lines are counted in [`RunStore::skipped_lines`], never
//! fatal — the store must survive truncated streams and foreign schema
//! generations mixed into append-only files.

// hetmmm-lint: ack-events(*) the store indexes whole event streams opaquely by label; per-variant decoding lives in analyze/timeline
use crate::input::{EventLog, ManifestLog};
use crate::trend::{parse_history, TrendEntry};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The manifest index key: which build ran which binary with which seed.
///
/// `seed: None` groups runs that recorded no seed (analyzer binaries,
/// unseeded tools) — they still count, they just cannot be replayed.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RunKey {
    /// Git revision the run was built at.
    pub git_rev: String,
    /// Binary name (manifest `bin`).
    pub bin: String,
    /// Seed, when the run recorded one.
    pub seed: Option<u64>,
}

/// Aggregates over every manifest that shares one [`RunKey`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunGroup {
    /// Runs recorded under this key.
    pub runs: u64,
    /// Wall time of each run, in manifest order.
    pub wall_nanos: Vec<u64>,
    /// Events emitted, summed across runs.
    pub events_emitted: u64,
    /// Counters summed across runs.
    pub counters: BTreeMap<String, u64>,
}

/// One history point of a workload's median wall time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Git revision of the perf-gate run.
    pub git_rev: String,
    /// Unix timestamp (seconds) of the run; 0 when unavailable.
    pub unix_secs: u64,
    /// Median wall nanoseconds measured for the workload.
    pub median_nanos: u64,
}

/// A workload's full history series, in append order (oldest first).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkloadSeries {
    /// Median wall time per history entry that carried this workload.
    pub points: Vec<SeriesPoint>,
    /// The newest entry's deterministic counters for the workload.
    pub latest_counters: BTreeMap<String, u64>,
}

impl WorkloadSeries {
    /// The newest median, when any point exists.
    pub fn latest_nanos(&self) -> Option<u64> {
        self.points.last().map(|p| p.median_nanos)
    }
}

/// The unified store. Build one with [`RunStore::default`], feed it with
/// the `ingest_*` methods (each is independent and optional), then query.
#[derive(Clone, Debug, Default)]
pub struct RunStore {
    /// Manifest aggregates indexed by `(git_rev, bin, seed)`.
    pub runs: BTreeMap<RunKey, RunGroup>,
    /// Raw trend entries in append order (the triage engine re-analyzes
    /// these with its own window/threshold).
    pub history: Vec<TrendEntry>,
    /// Per-workload median series flattened from `history`.
    pub workloads: BTreeMap<String, WorkloadSeries>,
    /// Labeled event streams (label → parsed log), e.g. `"census"`,
    /// `"baseline"`, `"latest"`.
    pub streams: BTreeMap<String, EventLog>,
    /// Unparsable lines skipped across every ingested input.
    pub skipped_lines: usize,
}

impl RunStore {
    /// Ingest a parsed manifest log into the `(git_rev, bin, seed)` index.
    pub fn ingest_manifests(&mut self, log: &ManifestLog) {
        self.skipped_lines += log.skipped_lines;
        for m in &log.manifests {
            let key = RunKey {
                git_rev: m.git_rev.clone(),
                bin: m.bin.clone(),
                seed: m.seed,
            };
            let group = self.runs.entry(key).or_default();
            group.runs += 1;
            group.wall_nanos.push(m.wall_nanos);
            group.events_emitted += m.events_emitted;
            for (name, v) in &m.metrics.counters {
                *group.counters.entry(name.clone()).or_default() += v;
            }
        }
    }

    /// Ingest manifest JSONL text (lenient).
    pub fn ingest_manifests_str(&mut self, text: &str) {
        self.ingest_manifests(&ManifestLog::parse_str(text));
    }

    /// Ingest bench-history JSONL text (lenient), extending both the raw
    /// entry list and the per-workload series.
    pub fn ingest_history_str(&mut self, text: &str) {
        let (entries, skipped) = parse_history(text);
        self.skipped_lines += skipped;
        for entry in &entries {
            for (name, median) in &entry.medians {
                let series = self.workloads.entry(name.clone()).or_default();
                series.points.push(SeriesPoint {
                    git_rev: entry.git_rev.clone(),
                    unix_secs: entry.unix_secs,
                    median_nanos: *median,
                });
            }
        }
        // The newest entry's counters win per workload.
        if let Some(latest) = entries.last() {
            for (workload, counter, v) in &latest.counters {
                if let Some(series) = self.workloads.get_mut(workload) {
                    series.latest_counters.insert(counter.clone(), *v);
                }
            }
        }
        self.history.extend(entries);
    }

    /// Register a labeled event stream (replacing any previous stream
    /// under the same label).
    pub fn ingest_events(&mut self, label: &str, log: EventLog) {
        self.skipped_lines += log.skipped_lines;
        self.streams.insert(label.to_string(), log);
    }

    /// Look up one workload's series.
    pub fn workload(&self, name: &str) -> Option<&WorkloadSeries> {
        self.workloads.get(name)
    }

    /// Look up a labeled stream.
    pub fn stream(&self, label: &str) -> Option<&EventLog> {
        self.streams.get(label)
    }

    /// The git revision of the newest history entry — the deterministic
    /// "as of" stamp consumers print instead of asking the clock or git.
    pub fn latest_git_rev(&self) -> Option<&str> {
        self.history.last().map(|e| e.git_rev.as_str())
    }

    /// Total manifest runs across every key.
    pub fn total_runs(&self) -> u64 {
        self.runs.values().map(|g| g.runs).sum()
    }

    /// Human-readable inventory: what the store holds, keyed and sorted.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== run store ({} manifest runs, {} history entries, {} streams, {} skipped lines) ==",
            self.total_runs(),
            self.history.len(),
            self.streams.len(),
            self.skipped_lines
        );
        for (key, group) in &self.runs {
            let seed = match key.seed {
                Some(s) => s.to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  run {} {} seed={seed}: {} run{}, {} events",
                key.git_rev,
                key.bin,
                group.runs,
                if group.runs == 1 { "" } else { "s" },
                group.events_emitted
            );
        }
        for (name, series) in &self.workloads {
            let _ = writeln!(
                out,
                "  workload {name}: {} point{}, latest {} ns",
                series.points.len(),
                if series.points.len() == 1 { "" } else { "s" },
                series.latest_nanos().unwrap_or(0)
            );
        }
        for (label, log) in &self.streams {
            let _ = writeln!(
                out,
                "  stream {label}: {} records, {} skipped",
                log.records.len(),
                log.skipped_lines
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trend::TREND_VERSION;
    use hetmmm_obs::{MetricsSnapshot, RunManifest, MANIFEST_VERSION};

    fn manifest(bin: &str, seed: Option<u64>, wall: u64) -> String {
        serde_json::to_string(&RunManifest {
            v: MANIFEST_VERSION,
            bin: bin.into(),
            args: vec![],
            seed,
            git_rev: "rev1".into(),
            started_unix_ms: 0,
            wall_nanos: wall,
            events_emitted: 10,
            metrics: MetricsSnapshot::default(),
        })
        .unwrap()
    }

    fn history_line(rev: &str, workload: &str, median: u64, counters: &[(&str, u64)]) -> String {
        serde_json::to_string(&TrendEntry {
            v: TREND_VERSION,
            git_rev: rev.into(),
            unix_secs: 5,
            k: 3,
            medians: vec![(workload.into(), median)],
            counters: counters
                .iter()
                .map(|(c, v)| (workload.to_string(), c.to_string(), *v))
                .collect(),
        })
        .unwrap()
    }

    #[test]
    fn manifests_index_by_rev_bin_seed() {
        let mut store = RunStore::default();
        let text = format!(
            "{}\n{}\n{}\nnot json\n",
            manifest("fig5", Some(1), 100),
            manifest("fig5", Some(1), 120),
            manifest("obs_report", None, 5),
        );
        store.ingest_manifests_str(&text);
        assert_eq!(store.total_runs(), 3);
        assert_eq!(store.skipped_lines, 1);
        let key = RunKey {
            git_rev: "rev1".into(),
            bin: "fig5".into(),
            seed: Some(1),
        };
        let group = &store.runs[&key];
        assert_eq!(group.runs, 2);
        assert_eq!(group.wall_nanos, vec![100, 120]);
        assert_eq!(group.events_emitted, 20);
    }

    #[test]
    fn history_flattens_into_workload_series() {
        let mut store = RunStore::default();
        let text = format!(
            "{}\n{}\ngarbage\n",
            history_line("a", "w", 100, &[("pushes", 4)]),
            history_line("b", "w", 150, &[("pushes", 5)]),
        );
        store.ingest_history_str(&text);
        assert_eq!(store.history.len(), 2);
        assert_eq!(store.skipped_lines, 1);
        assert_eq!(store.latest_git_rev(), Some("b"));
        let series = store.workload("w").expect("series");
        assert_eq!(series.points.len(), 2);
        assert_eq!(series.latest_nanos(), Some(150));
        assert_eq!(series.points[0].git_rev, "a");
        assert_eq!(series.latest_counters["pushes"], 5);
    }

    #[test]
    fn streams_register_by_label_and_render_is_deterministic() {
        let mut store = RunStore::default();
        store.ingest_events("census", EventLog::parse_str("not json\n"));
        assert_eq!(store.skipped_lines, 1);
        assert!(store.stream("census").is_some());
        assert!(store.stream("missing").is_none());
        let a = store.render_text();
        assert_eq!(a, store.render_text());
        assert!(a.contains("stream census: 0 records, 1 skipped"), "{a}");
    }

    #[test]
    fn empty_store_renders_header_only() {
        let store = RunStore::default();
        let text = store.render_text();
        assert!(text.starts_with("== run store (0 manifest runs"), "{text}");
        assert_eq!(text.lines().count(), 1);
        assert_eq!(store.latest_git_rev(), None);
    }
}
