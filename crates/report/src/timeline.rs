//! Per-processor timeline reconstruction from `ExecSegment` events.
//!
//! The executor (and the simulator) attribute every worker's wall time to
//! `compute` / `send` / `recv-wait` / `checkpoint` / `blocked` segments;
//! this module turns that stream back into per-processor timelines and
//! answers the questions the paper's cost models predict: measured
//! T_comm and T_exe per processor, the comm/compute overlap fraction, and
//! the cross-processor critical path (the chain of segments — same-worker
//! order plus send→recv-wait edges — that ends at the latest-finishing
//! segment, i.e. the measured makespan decomposition).
//!
//! The Chrome-trace exporter renders the segments in the trace-event JSON
//! format (`ph:"X"` complete events, microsecond timestamps) that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly. All output is deterministic: segments are sorted by a total
//! key, so a seeded `FakeClock` run renders byte-identically.

use hetmmm_obs::{EventKind, EventRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One attributed slice of a worker's wall time (the analysis-side mirror
/// of [`EventKind::ExecSegment`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Worker (processor letter).
    pub worker: String,
    /// Phase kind: `compute`, `send`, `recv-wait`, `checkpoint`, `blocked`.
    pub kind: String,
    /// Peer for comm segments (empty otherwise).
    pub peer: String,
    /// Pivot step.
    pub step: u64,
    /// Start on the emitting clock's axis.
    pub start_nanos: u64,
    /// End on the emitting clock's axis.
    pub end_nanos: u64,
}

impl Segment {
    /// Segment duration.
    pub fn nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }

    /// Is this a communication phase (`send`, `recv-wait`, or `blocked`)?
    pub fn is_comm(&self) -> bool {
        matches!(self.kind.as_str(), "send" | "recv-wait" | "blocked")
    }

    /// The deterministic total order used everywhere: time, then identity.
    fn sort_key(&self) -> (u64, u64, &str, &str, &str, u64) {
        (
            self.start_nanos,
            self.end_nanos,
            &self.worker,
            &self.kind,
            &self.peer,
            self.step,
        )
    }
}

/// Per-worker totals derived from one timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerSummary {
    /// Total `compute` time.
    pub compute_nanos: u64,
    /// Total `send` time (includes any `blocked` sub-interval).
    pub send_nanos: u64,
    /// Total `recv-wait` time.
    pub recv_wait_nanos: u64,
    /// Total `checkpoint` time.
    pub checkpoint_nanos: u64,
    /// Total full-channel `blocked` time (also counted inside `send`).
    pub blocked_nanos: u64,
    /// Earliest segment start.
    pub first_nanos: u64,
    /// Latest segment end.
    pub last_nanos: u64,
    /// Segments attributed to this worker.
    pub segments: usize,
    /// Fraction of this worker's `compute` time during which at least one
    /// *other* worker sat in a comm segment — the measured comm/compute
    /// overlap the SCO/PCO/PIO models assume is exploitable.
    pub overlap_fraction: f64,
}

impl WorkerSummary {
    /// Measured communication time: send + recv-wait (`blocked` already
    /// lies inside `send`, so it is not double-counted).
    pub fn comm_nanos(&self) -> u64 {
        self.send_nanos + self.recv_wait_nanos
    }

    /// Measured execution time: this worker's timeline extent.
    pub fn exe_nanos(&self) -> u64 {
        self.last_nanos.saturating_sub(self.first_nanos)
    }
}

/// The critical path: the chain of segments ending at the latest-finishing
/// segment, following same-worker ordering edges and cross-worker
/// `send → recv-wait` edges backward to a chain start.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// The chain, in time order.
    pub segments: Vec<Segment>,
    /// Chain extent: last end − first start.
    pub length_nanos: u64,
    /// Sum of segment durations along the chain. May exceed
    /// `length_nanos`: the two endpoints of a send→recv-wait edge overlap
    /// in wall time, and both sides are on the path.
    pub busy_nanos: u64,
}

/// A reconstructed multi-worker timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// All segments, in the deterministic total order.
    pub segments: Vec<Segment>,
}

impl Timeline {
    /// Extract and order every `ExecSegment` in the stream.
    pub fn from_events(records: &[EventRecord]) -> Timeline {
        let mut segments: Vec<Segment> = records
            .iter()
            // hetmmm-lint: ack-events(*) timelines are built from ExecSegment alone; every other variant passes through opaquely
            .filter_map(|r| match &r.event {
                EventKind::ExecSegment {
                    worker,
                    kind,
                    peer,
                    step,
                    start_nanos,
                    end_nanos,
                } => Some(Segment {
                    worker: worker.clone(),
                    kind: kind.clone(),
                    peer: peer.clone(),
                    step: *step,
                    start_nanos: *start_nanos,
                    end_nanos: *end_nanos,
                }),
                _ => None,
            })
            .collect();
        segments.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        Timeline { segments }
    }

    /// Is there anything to report?
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Global extent: latest end − earliest start over all segments.
    pub fn makespan_nanos(&self) -> u64 {
        let first = self.segments.iter().map(|s| s.start_nanos).min();
        let last = self.segments.iter().map(|s| s.end_nanos).max();
        match (first, last) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => 0,
        }
    }

    /// Per-worker totals, keyed by worker name (sorted).
    pub fn summarize(&self) -> BTreeMap<String, WorkerSummary> {
        let mut out: BTreeMap<String, WorkerSummary> = BTreeMap::new();
        for seg in &self.segments {
            let w = out.entry(seg.worker.clone()).or_insert(WorkerSummary {
                first_nanos: u64::MAX,
                ..WorkerSummary::default()
            });
            let d = seg.nanos();
            match seg.kind.as_str() {
                "compute" => w.compute_nanos += d,
                "send" => w.send_nanos += d,
                "recv-wait" => w.recv_wait_nanos += d,
                "checkpoint" => w.checkpoint_nanos += d,
                "blocked" => w.blocked_nanos += d,
                _ => {}
            }
            w.first_nanos = w.first_nanos.min(seg.start_nanos);
            w.last_nanos = w.last_nanos.max(seg.end_nanos);
            w.segments += 1;
        }
        // Overlap fraction: intersect each worker's compute intervals with
        // the union of every other worker's comm intervals.
        let workers: Vec<String> = out.keys().cloned().collect();
        for worker in &workers {
            let compute: Vec<(u64, u64)> = self
                .segments
                .iter()
                .filter(|s| &s.worker == worker && s.kind == "compute" && s.nanos() > 0)
                .map(|s| (s.start_nanos, s.end_nanos))
                .collect();
            let others_comm: Vec<(u64, u64)> = self
                .segments
                .iter()
                .filter(|s| &s.worker != worker && s.is_comm() && s.kind != "blocked")
                .map(|s| (s.start_nanos, s.end_nanos))
                .collect();
            let comm = merge_intervals(others_comm);
            let total: u64 = compute.iter().map(|&(a, b)| b - a).sum();
            let overlapped: u64 = compute
                .iter()
                .map(|&(a, b)| {
                    comm.iter()
                        .map(|&(c, d)| d.min(b).saturating_sub(c.max(a)))
                        .sum::<u64>()
                })
                .sum();
            if let Some(w) = out.get_mut(worker) {
                w.overlap_fraction = if total > 0 {
                    overlapped as f64 / total as f64
                } else {
                    0.0
                };
            }
        }
        for w in out.values_mut() {
            if w.first_nanos == u64::MAX {
                w.first_nanos = 0;
            }
        }
        out
    }

    /// The cross-processor critical path.
    ///
    /// Walks backward from the latest-ending segment. At each segment the
    /// predecessor is whichever of these ends latest (ties prefer the
    /// cross-worker edge, which is the interesting one):
    ///
    /// - the matching `send` on the peer, when this segment is a
    ///   `recv-wait` (same `(peer, worker, step)` triple);
    /// - the same worker's latest segment ending at or before this start.
    pub fn critical_path(&self) -> CriticalPath {
        let Some(mut current) = self
            .segments
            .iter()
            .max_by_key(|s| (s.end_nanos, std::cmp::Reverse(s.sort_key())))
        else {
            return CriticalPath::default();
        };
        let mut chain = vec![current.clone()];
        loop {
            let cross: Option<&Segment> = if current.kind == "recv-wait" {
                self.segments
                    .iter()
                    .filter(|s| {
                        s.kind == "send"
                            && s.worker == current.peer
                            && s.peer == current.worker
                            && s.step == current.step
                    })
                    .max_by_key(|s| s.end_nanos)
            } else {
                None
            };
            let same: Option<&Segment> = self
                .segments
                .iter()
                .filter(|s| {
                    s.worker == current.worker
                        && s.end_nanos <= current.start_nanos
                        && s.sort_key() != current.sort_key()
                })
                .max_by_key(|s| (s.end_nanos, std::cmp::Reverse(s.sort_key())));
            let next = match (cross, same) {
                (Some(c), Some(s)) => {
                    if c.end_nanos >= s.end_nanos {
                        Some(c)
                    } else {
                        Some(s)
                    }
                }
                (Some(c), None) => Some(c),
                (None, Some(s)) => Some(s),
                (None, None) => None,
            };
            match next {
                // A cycle cannot arise from the time-ordered edges, but a
                // degenerate all-zero-length stream (FakeClock that never
                // advanced) could revisit; the membership check bounds us.
                Some(seg) if !chain.iter().any(|c| c.sort_key() == seg.sort_key()) => {
                    chain.push(seg.clone());
                    current = seg;
                }
                _ => break,
            }
        }
        chain.reverse();
        let first = chain.first().map(|s| s.start_nanos).unwrap_or(0);
        let last = chain.last().map(|s| s.end_nanos).unwrap_or(0);
        CriticalPath {
            length_nanos: last.saturating_sub(first),
            busy_nanos: chain.iter().map(Segment::nanos).sum(),
            segments: chain,
        }
    }

    /// Render the Chrome trace-event JSON (the "JSON Object Format": a
    /// `traceEvents` array of `ph:"X"` complete events). Timestamps are
    /// microseconds with nanosecond precision; one `tid` per worker in
    /// sorted order, named via `thread_name` metadata events. Deterministic
    /// byte-for-byte for a given timeline.
    pub fn chrome_trace_json(&self) -> String {
        let workers: Vec<&String> = {
            let mut w: Vec<&String> = self.segments.iter().map(|s| &s.worker).collect();
            w.sort();
            w.dedup();
            w
        };
        let tid_of =
            |worker: &str| -> usize { 1 + workers.iter().position(|w| *w == worker).unwrap_or(0) };
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for (i, worker) in workers.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"worker {}\"}}}}",
                i + 1,
                json_escape(worker)
            );
        }
        for seg in &self.segments {
            if !first {
                out.push(',');
            }
            first = false;
            let name = if seg.peer.is_empty() {
                seg.kind.clone()
            } else {
                format!("{} {}", seg.kind, seg.peer)
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"step\":{},\"peer\":\"{}\"}}}}",
                json_escape(&name),
                json_escape(&seg.kind),
                micros(seg.start_nanos),
                micros(seg.nanos()),
                tid_of(&seg.worker),
                seg.step,
                json_escape(&seg.peer)
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }

    /// Human-readable timeline section (empty string when no segments).
    pub fn render_text(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let summaries = self.summarize();
        let _ = writeln!(
            out,
            "== timeline ({} segments, makespan {} ns) ==",
            self.segments.len(),
            self.makespan_nanos()
        );
        for (worker, s) in &summaries {
            let _ = writeln!(
                out,
                "  {worker}: T_exe={} ns, T_comm={} ns (send={} recv-wait={} blocked={}), \
                 compute={} ns, checkpoint={} ns, overlap={:.1}%",
                s.exe_nanos(),
                s.comm_nanos(),
                s.send_nanos,
                s.recv_wait_nanos,
                s.blocked_nanos,
                s.compute_nanos,
                s.checkpoint_nanos,
                100.0 * s.overlap_fraction
            );
        }
        let cp = self.critical_path();
        let _ = writeln!(
            out,
            "critical path: {} segments, length {} ns ({} ns busy)",
            cp.segments.len(),
            cp.length_nanos,
            cp.busy_nanos
        );
        let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
        for seg in &cp.segments {
            *by_kind.entry(seg.kind.as_str()).or_default() += seg.nanos();
        }
        for (kind, nanos) in by_kind {
            let _ = writeln!(out, "  on path: {kind} {nanos} ns");
        }
        out
    }
}

/// Merge overlapping `(start, end)` intervals (input order free).
fn merge_intervals(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.retain(|&(a, b)| b > a);
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (a, b) in iv {
        match out.last_mut() {
            Some((_, e)) if a <= *e => *e = (*e).max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// Nanoseconds rendered as microseconds with fixed 3-decimal precision
/// (exact: 1 ns = 0.001 µs), keeping the JSON bytes deterministic.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1000, nanos % 1000)
}

/// Minimal JSON string escaping for worker/kind/peer labels.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_obs::SCHEMA_VERSION;

    fn seg(worker: &str, kind: &str, peer: &str, step: u64, start: u64, end: u64) -> EventRecord {
        EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: start,
            event: EventKind::ExecSegment {
                worker: worker.into(),
                kind: kind.into(),
                peer: peer.into(),
                step,
                start_nanos: start,
                end_nanos: end,
            },
        }
    }

    /// A tight 3-worker fixture: P sends to R (0–10), R waits for it
    /// (0–10), R computes (10–30), R sends to S (30–35), S waits (20–35),
    /// S computes (35–50). The critical path P.send → R.recv-wait →
    /// R.compute → R.send → S.recv-wait → S.compute spans the whole
    /// makespan.
    fn fixture() -> Timeline {
        Timeline::from_events(&[
            seg("P", "send", "R", 0, 0, 10),
            seg("P", "compute", "", 0, 10, 18),
            seg("R", "recv-wait", "P", 0, 0, 10),
            seg("R", "compute", "", 0, 10, 30),
            seg("R", "send", "S", 1, 30, 35),
            seg("S", "compute", "", 0, 5, 20),
            seg("S", "recv-wait", "R", 1, 20, 35),
            seg("S", "compute", "", 1, 35, 50),
        ])
    }

    #[test]
    fn critical_path_length_equals_makespan() {
        let tl = fixture();
        assert_eq!(tl.makespan_nanos(), 50);
        let cp = tl.critical_path();
        assert_eq!(cp.length_nanos, tl.makespan_nanos());
        let kinds: Vec<&str> = cp.segments.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(
            kinds,
            [
                "send",
                "recv-wait",
                "compute",
                "send",
                "recv-wait",
                "compute"
            ]
        );
        assert_eq!(cp.busy_nanos, 10 + 10 + 20 + 5 + 15 + 15);
    }

    #[test]
    fn summaries_attribute_time_per_kind() {
        let tl = fixture();
        let sums = tl.summarize();
        let r = &sums["R"];
        assert_eq!(r.compute_nanos, 20);
        assert_eq!(r.recv_wait_nanos, 10);
        assert_eq!(r.send_nanos, 5);
        assert_eq!(r.comm_nanos(), 15);
        assert_eq!(r.exe_nanos(), 35);
        // S computes 5–20 while R waits 0–10 and R sends 30–35: overlap
        // with other workers' comm is 5–10 out of its first compute, so
        // (5 + 0) / (15 + 15).
        let s = &sums["S"];
        assert!((s.overlap_fraction - 5.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_is_deterministic_and_ordered() {
        let tl = fixture();
        let a = tl.chrome_trace_json();
        let b = fixture().chrome_trace_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.ends_with("],\"displayTimeUnit\":\"ns\"}"));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"name\":\"thread_name\""));
        // 1 ns = 0.001 µs, rendered exactly.
        assert!(a.contains("\"ts\":0.000"));
        assert!(a.contains("\"dur\":0.010") || a.contains("\"dur\":0.005"));
    }

    #[test]
    fn trace_json_parses_as_valid_json() {
        let tl = fixture();
        let json = tl.chrome_trace_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("trace must parse");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 8 segments + 3 thread_name metadata records.
        assert_eq!(events.len(), 11);
    }

    #[test]
    fn empty_stream_yields_empty_timeline() {
        let tl = Timeline::from_events(&[]);
        assert!(tl.is_empty());
        assert_eq!(tl.makespan_nanos(), 0);
        assert!(tl.critical_path().segments.is_empty());
        assert_eq!(tl.render_text(), "");
    }

    #[test]
    fn zero_duration_segments_stay_deterministic() {
        // A FakeClock that never advances produces all-zero timestamps;
        // the identity part of the sort key still gives a total order.
        let tl = Timeline::from_events(&[
            seg("R", "compute", "", 1, 0, 0),
            seg("P", "compute", "", 1, 0, 0),
            seg("P", "send", "R", 1, 0, 0),
        ]);
        let workers: Vec<&str> = tl.segments.iter().map(|s| s.worker.as_str()).collect();
        assert_eq!(workers, ["P", "P", "R"]);
        assert_eq!(tl.makespan_nanos(), 0);
        assert!(!tl.chrome_trace_json().is_empty());
    }
}
