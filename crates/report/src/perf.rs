//! The perf-gate data model: seeded workload measurements and the
//! baseline comparison.
//!
//! The `perf_gate` binary runs a fixed, seeded workload suite and records
//! a [`BenchSuite`] (`BENCH_current.json`). CI compares it against the
//! committed `BENCH_baseline.json` with [`compare`]: wall-times gate on a
//! noise-tolerant *ratio* (median-of-k against median-of-k), while the
//! recorded counters — push totals, executor update/element counts — are
//! seeded-deterministic and gate on exact equality, so a silent behavior
//! change fails even when it happens to be fast.

use serde::{Deserialize, Serialize};

/// Schema version of the bench-suite JSON.
pub const BENCH_VERSION: u32 = 1;

/// One measured workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Workload name, e.g. `fig5_census_slice`.
    pub name: String,
    /// Median of [`BenchEntry::wall_nanos`].
    pub median_wall_nanos: u64,
    /// Raw wall time of each repetition, in run order.
    pub wall_nanos: Vec<u64>,
    /// Deterministic counters recorded during the *first* repetition,
    /// sorted by name. Only counters that are pure functions of the seed
    /// belong here — anything timing-dependent breaks the exact gate.
    pub counters: Vec<(String, u64)>,
}

/// A full suite measurement, serialized to `BENCH_*.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchSuite {
    /// Always [`BENCH_VERSION`] for suites produced by this build.
    pub v: u32,
    /// Git revision the suite was measured at.
    pub git_rev: String,
    /// Repetitions per workload.
    pub k: u64,
    /// Measured workloads, in suite order.
    pub entries: Vec<BenchEntry>,
}

impl BenchSuite {
    /// Look up an entry by workload name.
    pub fn entry(&self, name: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

/// One reason the gate fails.
#[derive(Clone, Debug, PartialEq)]
pub enum GateIssue {
    /// A baseline workload is missing from the current suite.
    MissingEntry {
        /// Workload name.
        name: String,
    },
    /// Median wall time regressed beyond the threshold ratio.
    WallRegression {
        /// Workload name.
        name: String,
        /// Baseline median (ns).
        baseline_nanos: u64,
        /// Current median (ns).
        current_nanos: u64,
        /// `current / baseline`.
        ratio: f64,
        /// The configured limit the ratio exceeded.
        threshold: f64,
    },
    /// A deterministic counter changed value.
    CounterMismatch {
        /// Workload name.
        name: String,
        /// Counter name.
        counter: String,
        /// Baseline value (`None` = absent).
        baseline: Option<u64>,
        /// Current value (`None` = absent).
        current: Option<u64>,
    },
}

impl std::fmt::Display for GateIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateIssue::MissingEntry { name } => {
                write!(f, "{name}: missing from current suite")
            }
            GateIssue::WallRegression {
                name,
                baseline_nanos,
                current_nanos,
                ratio,
                threshold,
            } => write!(
                f,
                "{name}: wall regression {baseline_nanos}ns -> {current_nanos}ns \
                 ({ratio:.2}x > {threshold:.2}x limit)"
            ),
            GateIssue::CounterMismatch {
                name,
                counter,
                baseline,
                current,
            } => write!(
                f,
                "{name}: counter {counter} changed {baseline:?} -> {current:?}"
            ),
        }
    }
}

/// Median of a value set (lower-of-two-middles for even counts; 0 when
/// empty).
pub fn median(values: &[u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) / 2]
}

/// Compare a current suite against the committed baseline.
///
/// Returns every violation found (empty = gate passes). `threshold` is
/// the allowed `current/baseline` median wall-time ratio — generous by
/// design (CI machines are noisy and heterogeneous); the exact counter
/// gate is what catches quiet behavioral drift. Workloads present only in
/// the current suite are new measurements, not failures.
pub fn compare(baseline: &BenchSuite, current: &BenchSuite, threshold: f64) -> Vec<GateIssue> {
    let mut issues = Vec::new();
    for base in &baseline.entries {
        let Some(cur) = current.entry(&base.name) else {
            issues.push(GateIssue::MissingEntry {
                name: base.name.clone(),
            });
            continue;
        };
        if base.median_wall_nanos > 0 {
            let ratio = cur.median_wall_nanos as f64 / base.median_wall_nanos as f64;
            if ratio > threshold {
                issues.push(GateIssue::WallRegression {
                    name: base.name.clone(),
                    baseline_nanos: base.median_wall_nanos,
                    current_nanos: cur.median_wall_nanos,
                    ratio,
                    threshold,
                });
            }
        }
        let cur_counter = |name: &str| {
            cur.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        let base_counter = |name: &str| {
            base.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        for (name, base_v) in &base.counters {
            let cur_v = cur_counter(name);
            if cur_v != Some(*base_v) {
                issues.push(GateIssue::CounterMismatch {
                    name: base.name.clone(),
                    counter: name.clone(),
                    baseline: Some(*base_v),
                    current: cur_v,
                });
            }
        }
        for (name, cur_v) in &cur.counters {
            if base_counter(name).is_none() {
                issues.push(GateIssue::CounterMismatch {
                    name: base.name.clone(),
                    counter: name.clone(),
                    baseline: None,
                    current: Some(*cur_v),
                });
            }
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, med: u64, counters: &[(&str, u64)]) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            median_wall_nanos: med,
            wall_nanos: vec![med; 3],
            counters: counters.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    fn suite(entries: Vec<BenchEntry>) -> BenchSuite {
        BenchSuite {
            v: BENCH_VERSION,
            git_rev: "test".into(),
            k: 3,
            entries,
        }
    }

    #[test]
    fn identical_suites_pass() {
        let s = suite(vec![entry("a", 1000, &[("dfa.push.type1.down", 42)])]);
        assert!(compare(&s, &s, 1.8).is_empty());
    }

    #[test]
    fn slowdown_within_threshold_passes_beyond_fails() {
        let base = suite(vec![entry("a", 1000, &[])]);
        let ok = suite(vec![entry("a", 1700, &[])]);
        assert!(compare(&base, &ok, 1.8).is_empty());
        let slow = suite(vec![entry("a", 5000, &[])]);
        let issues = compare(&base, &slow, 1.8);
        assert_eq!(issues.len(), 1);
        assert!(matches!(
            &issues[0],
            GateIssue::WallRegression { ratio, .. } if (*ratio - 5.0).abs() < 1e-9
        ));
    }

    #[test]
    fn speedups_never_fail() {
        let base = suite(vec![entry("a", 10_000, &[])]);
        let fast = suite(vec![entry("a", 10, &[])]);
        assert!(compare(&base, &fast, 1.8).is_empty());
    }

    #[test]
    fn counter_drift_fails_even_when_fast() {
        let base = suite(vec![entry("a", 1000, &[("pushes", 42)])]);
        let drifted = suite(vec![entry("a", 500, &[("pushes", 41)])]);
        let issues = compare(&base, &drifted, 1.8);
        assert_eq!(issues.len(), 1);
        assert!(
            matches!(&issues[0], GateIssue::CounterMismatch { counter, .. } if counter == "pushes")
        );
    }

    #[test]
    fn missing_and_extra_counters_are_reported() {
        let base = suite(vec![entry("a", 1000, &[("old", 1)])]);
        let cur = suite(vec![entry("a", 1000, &[("new", 2)])]);
        let issues = compare(&base, &cur, 1.8);
        assert_eq!(issues.len(), 2, "one vanished counter, one new counter");
    }

    #[test]
    fn missing_entry_is_reported_but_new_entries_are_not() {
        let base = suite(vec![entry("gone", 1000, &[])]);
        let cur = suite(vec![entry("brand_new", 1000, &[])]);
        let issues = compare(&base, &cur, 1.8);
        assert_eq!(
            issues,
            vec![GateIssue::MissingEntry {
                name: "gone".into()
            }]
        );
    }

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[]), 0);
        assert_eq!(median(&[5]), 5);
        assert_eq!(median(&[3, 1, 2]), 2);
        assert_eq!(median(&[4, 1, 3, 2]), 2, "lower of two middles");
    }

    #[test]
    fn suite_round_trips_through_json() {
        let s = suite(vec![entry("a", 1000, &[("c", 7)])]);
        let back: BenchSuite = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn zero_baseline_median_never_divides() {
        // A FakeClock-measured baseline (all zeros) must not gate on an
        // infinite ratio.
        let base = suite(vec![entry("a", 0, &[])]);
        let cur = suite(vec![entry("a", 1_000_000, &[])]);
        assert!(compare(&base, &cur, 1.8).is_empty());
    }
}
