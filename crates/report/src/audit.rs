//! Model-vs-measured prediction audit.
//!
//! The paper's argument rests on predicted T_comm/T_exe from the five cost
//! models (Eqs. 2–9); this module closes the loop by joining a *measured*
//! executor timeline (from [`crate::timeline`]) against what the models
//! predict for the same `(shape, speeds, Hockney params)`.
//!
//! Raw wall times are not directly comparable to model seconds — the
//! models are parameterized by an abstract per-update speed and per-element
//! send cost. The audit therefore *calibrates* an effective platform from
//! the measured run itself:
//!
//! - effective `base_speed` — measured updates of the slowest processor
//!   `S` divided by its measured compute time (cross-checked against the
//!   other processors through the declared speed ratio);
//! - effective `β` — total hop-weighted elements sent divided by the sum
//!   of measured send time.
//!
//! With that platform, `evaluate_all` yields each model's predicted
//! total; the per-model relative error against the measured makespan is
//! the audit's verdict: which composition rule (serial/parallel, barrier/
//! overlap) best explains where the executor's time actually went.

use crate::timeline::Timeline;
use hetmmm_cost::{evaluate_all, Platform, Topology};
use hetmmm_partition::{pairwise_volumes, Partition, Proc, Ratio};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Why a measured timeline could not be calibrated into model space.
///
/// Every variant is a *structural* property of the input stream, not an
/// I/O failure: a `FakeClock` that never advanced, a tiny-N partition with
/// no cross-processor traffic, or a stream with no `ExecSegment` events at
/// all. Callers can match on the variant; `Display` renders the
/// human-readable note the CLI prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// The stream carried no `ExecSegment` events (schema v4).
    NoSegments,
    /// No worker accumulated measurable compute time, so an effective
    /// `base_speed` cannot be estimated (zero-advance clock).
    NoComputeSignal,
    /// The partition has zero analytic cross-processor volume, so β would
    /// divide by zero.
    NoAnalyticVolume,
    /// No worker accumulated measurable send time, so β would be zero and
    /// every comm prediction degenerate.
    NoSendSignal,
    /// The measured makespan is zero; relative errors would be NaN.
    ZeroMakespan,
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::NoSegments => write!(
                f,
                "uncalibratable: no ExecSegment events in the stream (schema v4, \
                 emitted when a sink is installed during an executor run)"
            ),
            AuditError::NoComputeSignal => write!(
                f,
                "uncalibratable: no measurable compute time in any worker \
                 (did the clock advance during the run?)"
            ),
            AuditError::NoAnalyticVolume => write!(
                f,
                "uncalibratable: partition has no cross-processor traffic to calibrate β from"
            ),
            AuditError::NoSendSignal => write!(
                f,
                "uncalibratable: no measurable send time in any worker \
                 (did the clock advance during the run?)"
            ),
            AuditError::ZeroMakespan => {
                write!(f, "uncalibratable: measured makespan is zero")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// One model's predicted-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct AuditRow {
    /// Model abbreviation (SCB/PCB/SCO/PCO/PIO).
    pub model: String,
    /// Predicted communication time (s).
    pub predicted_comm: f64,
    /// Predicted total execution time (s).
    pub predicted_total: f64,
    /// `(predicted_total − measured) / measured`.
    pub rel_error: f64,
}

/// Measured per-processor summary carried into the report.
#[derive(Debug, Clone)]
pub struct MeasuredProc {
    /// Measured communication time (s): send + recv-wait.
    pub comm_secs: f64,
    /// Measured execution time (s): the worker's timeline extent.
    pub exe_secs: f64,
    /// Measured compute time (s).
    pub compute_secs: f64,
    /// Comm/compute overlap fraction (see
    /// [`crate::timeline::WorkerSummary::overlap_fraction`]).
    pub overlap_fraction: f64,
}

/// The full audit: measured per-processor breakdown, calibrated platform
/// parameters, and one row per cost model.
#[derive(Debug, Clone)]
pub struct Audit {
    /// Per-processor measurements, keyed by processor letter.
    pub measured: BTreeMap<String, MeasuredProc>,
    /// Measured makespan (s) — what every model's total is compared to.
    pub measured_makespan_secs: f64,
    /// Calibrated effective updates/s of the slowest processor.
    pub base_speed: f64,
    /// Calibrated effective per-element send cost (s).
    pub beta: f64,
    /// One row per model, in `Algorithm::ALL` order.
    pub rows: Vec<AuditRow>,
}

/// Run the audit: calibrate a platform from the measured timeline, then
/// compare every model's prediction for `part` against the measurement.
///
/// Fails with a typed [`AuditError`] when the timeline carries no usable
/// signal — no segments, zero measured compute time, zero analytic
/// volume, or zero measured send time — which is what a `FakeClock`
/// stream that never advanced (or a tiny-N trace) looks like. The typed
/// guard is what keeps NaN relative errors out of every consumer.
pub fn audit(timeline: &Timeline, part: &Partition, ratio: Ratio) -> Result<Audit, AuditError> {
    if timeline.is_empty() {
        return Err(AuditError::NoSegments);
    }
    let summaries = timeline.summarize();
    let n = part.n() as u64;

    // Measured updates per processor for a clean full run: every owned C
    // cell is updated once per pivot step.
    let updates = |p: Proc| n * part.elems(p) as u64;

    // Effective per-proc speed (updates/s), then normalize through the
    // declared ratio down to the slowest processor S.
    let mut speed_estimates: Vec<f64> = Vec::new();
    for p in Proc::ALL {
        let Some(s) = summaries.get(&p.to_string()) else {
            continue;
        };
        let secs = s.compute_nanos as f64 / 1e9;
        let u = updates(p);
        if secs > 0.0 && u > 0 {
            let rel = f64::from(ratio.speed(p)) / f64::from(ratio.s);
            speed_estimates.push(u as f64 / secs / rel);
        }
    }
    if speed_estimates.is_empty() {
        return Err(AuditError::NoComputeSignal);
    }
    speed_estimates.sort_by(f64::total_cmp);
    let base_speed = speed_estimates[speed_estimates.len() / 2];

    // Effective β from total measured send seconds over hop-weighted
    // elements (fully connected: hops = 1 everywhere).
    let vol = pairwise_volumes(part);
    let total_elems: u64 = Proc::ALL
        .iter()
        .flat_map(|x| Proc::ALL.iter().map(move |y| (x, y)))
        .filter(|(x, y)| x != y)
        .map(|(x, y)| vol[x.idx()][y.idx()])
        .sum();
    let total_send_secs: f64 = summaries.values().map(|s| s.send_nanos as f64 / 1e9).sum();
    if total_elems == 0 {
        return Err(AuditError::NoAnalyticVolume);
    }
    if total_send_secs <= 0.0 || !total_send_secs.is_finite() {
        return Err(AuditError::NoSendSignal);
    }
    let beta = total_send_secs / total_elems as f64;

    let plat = Platform {
        network: hetmmm_cost::HockneyModel::per_element(beta),
        topology: Topology::FullyConnected,
        ratio,
        base_speed,
    };
    let measured_makespan_secs = timeline.makespan_nanos() as f64 / 1e9;
    if measured_makespan_secs <= 0.0 {
        return Err(AuditError::ZeroMakespan);
    }

    let measured = summaries
        .iter()
        .map(|(w, s)| {
            (
                w.clone(),
                MeasuredProc {
                    comm_secs: s.comm_nanos() as f64 / 1e9,
                    exe_secs: s.exe_nanos() as f64 / 1e9,
                    compute_secs: s.compute_nanos as f64 / 1e9,
                    overlap_fraction: s.overlap_fraction,
                },
            )
        })
        .collect();

    let rows = evaluate_all(part, &plat)
        .into_iter()
        .map(|(algo, t)| AuditRow {
            model: algo.name().to_string(),
            predicted_comm: t.comm,
            predicted_total: t.total,
            rel_error: (t.total - measured_makespan_secs) / measured_makespan_secs,
        })
        .collect();

    Ok(Audit {
        measured,
        measured_makespan_secs,
        base_speed,
        beta,
        rows,
    })
}

impl Audit {
    /// Human-readable audit table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== prediction audit (measured makespan {:.6} s) ==",
            self.measured_makespan_secs
        );
        let _ = writeln!(
            out,
            "calibrated platform: base_speed {:.3e} updates/s, beta {:.3e} s/elem",
            self.base_speed, self.beta
        );
        let _ = writeln!(out, "measured per processor:");
        for (proc, m) in &self.measured {
            let _ = writeln!(
                out,
                "  {proc}: T_comm={:.6} s T_exe={:.6} s compute={:.6} s overlap={:.1}%",
                m.comm_secs,
                m.exe_secs,
                m.compute_secs,
                100.0 * m.overlap_fraction
            );
        }
        let _ = writeln!(
            out,
            "{:<6} {:>14} {:>14} {:>10}",
            "model", "pred_comm_s", "pred_total_s", "rel_err"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<6} {:>14.6} {:>14.6} {:>+9.1}%",
                row.model,
                row.predicted_comm,
                row.predicted_total,
                100.0 * row.rel_error
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetmmm_obs::{EventKind, EventRecord, SCHEMA_VERSION};

    fn seg(worker: &str, kind: &str, peer: &str, start: u64, end: u64) -> EventRecord {
        EventRecord {
            v: SCHEMA_VERSION,
            ts_nanos: start,
            event: EventKind::ExecSegment {
                worker: worker.into(),
                kind: kind.into(),
                peer: peer.into(),
                step: 0,
                start_nanos: start,
                end_nanos: end,
            },
        }
    }

    fn strips(n: usize) -> Partition {
        Partition::from_fn(n, |i, _| {
            if i < n / 3 {
                Proc::P
            } else if i < 2 * n / 3 {
                Proc::R
            } else {
                Proc::S
            }
        })
    }

    #[test]
    fn audit_reports_all_five_models() {
        let part = strips(12);
        // A synthetic measured run: everyone computes 1 ms and sends for
        // 0.5 ms; S is the makespan tail.
        let tl = Timeline::from_events(&[
            seg("P", "send", "R", 0, 500_000),
            seg("P", "compute", "", 500_000, 1_500_000),
            seg("R", "send", "S", 0, 500_000),
            seg("R", "compute", "", 500_000, 1_500_000),
            seg("S", "send", "P", 0, 500_000),
            seg("S", "compute", "", 500_000, 2_000_000),
        ]);
        let audit = audit(&tl, &part, Ratio::new(1, 1, 1)).expect("calibratable");
        assert_eq!(audit.rows.len(), 5);
        let names: Vec<&str> = audit.rows.iter().map(|r| r.model.as_str()).collect();
        assert_eq!(names, ["SCB", "PCB", "SCO", "PCO", "PIO"]);
        assert!(audit.base_speed > 0.0);
        assert!(audit.beta > 0.0);
        assert!(audit.rows.iter().all(|r| r.rel_error.is_finite()));
        let text = audit.render_text();
        assert!(text.contains("prediction audit"));
        assert!(text.contains("SCB"));
        assert!(text.contains("PIO"));
    }

    #[test]
    fn audit_fails_gracefully_without_signal() {
        let part = strips(12);
        let tl = Timeline::from_events(&[]);
        assert_eq!(
            audit(&tl, &part, Ratio::new(1, 1, 1)).unwrap_err(),
            AuditError::NoSegments
        );
        // All-zero clock: segments exist but carry no duration.
        let tl = Timeline::from_events(&[seg("P", "compute", "", 0, 0)]);
        let err = audit(&tl, &part, Ratio::new(1, 1, 1)).unwrap_err();
        assert_eq!(err, AuditError::NoComputeSignal);
        assert!(err.to_string().contains("uncalibratable"), "{err}");
        assert!(err.to_string().contains("clock"), "{err}");
    }

    #[test]
    fn audit_zero_send_time_is_typed_not_nan() {
        // Compute advanced but every send is zero-width (FakeClock stepped
        // only inside compute): β would be 0/positive-volume → degenerate;
        // the typed NoSendSignal note replaces what used to risk NaN
        // relative errors downstream.
        let part = strips(12);
        let tl = Timeline::from_events(&[
            seg("P", "compute", "", 0, 1_000_000),
            seg("P", "send", "R", 1_000_000, 1_000_000),
            seg("R", "compute", "", 0, 1_000_000),
            seg("S", "compute", "", 0, 2_000_000),
        ]);
        assert_eq!(
            audit(&tl, &part, Ratio::new(1, 1, 1)).unwrap_err(),
            AuditError::NoSendSignal
        );
    }

    #[test]
    fn audit_zero_analytic_volume_is_typed() {
        // A single-owner partition has no cross-processor traffic at all:
        // the analytic pairwise volume is 0 and β cannot be calibrated.
        let part = Partition::from_fn(6, |_, _| Proc::P);
        let tl = Timeline::from_events(&[
            seg("P", "compute", "", 0, 1_000_000),
            seg("P", "send", "R", 1_000_000, 1_500_000),
        ]);
        assert_eq!(
            audit(&tl, &part, Ratio::new(1, 1, 1)).unwrap_err(),
            AuditError::NoAnalyticVolume
        );
    }
}
